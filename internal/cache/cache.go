package cache

import (
	"fmt"
	"sort"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// LineState is a cache line's coherence state.
type LineState uint8

const (
	// Invalid: no copy.
	Invalid LineState = iota
	// Shared: clean read-only copy; other caches may also hold it.
	Shared
	// Exclusive: the only copy, writable (dirty).
	Exclusive
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "?"
	}
}

// line is one cached line, including the Section-5.3 reserve bit.
type line struct {
	state    LineState
	value    mem.Value
	reserved bool
	// epoch is the directory transaction that granted this copy. Every
	// later directory message for the line carries a strictly greater
	// epoch, so a forward or invalidation tagged with epoch <= this one is
	// a duplicated or delayed fabric artifact, not a protocol event.
	epoch uint64
}

// mshr tracks one outstanding transaction for an address.
type mshr struct {
	exclusive    bool // GetX (else GetS)
	sync         bool // synchronization access (not counted by dataCounter)
	update       bool // UpdateReq (write-update protocol)
	dataArrived  bool
	performed    bool // WriteAck (or Performed Data) received
	invWhilePend bool // an Inv overtook our pending read: don't install
	// updateOverride holds a newer value delivered by a MsgUpdate that
	// overtook our pending fill (non-FIFO fabrics): the fill installs it
	// instead of the stale Data payload.
	updateOverride *mem.Value
	value          mem.Value
	excl           bool
	// seq is the transaction number stamped on the request; responses must
	// echo it or be discarded as stale.
	seq uint64
	// req is the request message, kept for retransmission.
	req Msg
	// attempts counts retransmissions (timeout- or NACK-triggered).
	attempts int
	// onData fires at commit (Data arrival; for reads, value binding).
	onData func(old mem.Value)
	// onPerformed fires at global performance (writes/syncs only).
	onPerformed func()
	// issuer, when non-nil, replaces onData/onPerformed: the cache calls
	// LineCommitted/LinePerformed with a pointer to ictx, the issuer's
	// per-access context stored by value in the MSHR. This is the
	// allocation-free completion path — one mshr allocation per miss instead
	// of an mshr plus captured continuation closures.
	issuer IssueSink
	ictx   IssueCtx
	// free callbacks waiting for the MSHR to clear.
	onFree []func()
}

// IssueCtx is the per-access context an IssueSink stores in the MSHR when
// issuing a miss through AcquireSharedCtx/AcquireExclusiveCtx. The cache
// treats every field as opaque issuer scratch: it copies the context into
// the MSHR at issue time and hands a pointer to that copy back at commit and
// performance time, so the issuer keeps per-transaction state (timestamps,
// operand values) without capturing it in closures.
type IssueCtx struct {
	Kind  uint8 // issuer-defined discriminator
	Flag  bool  // issuer-defined (e.g. stall-until-performed)
	RMW   uint8 // issuer-defined RMW function selector
	Op    mem.Op
	OpIdx int
	Addr  mem.Addr
	Data  mem.Value // write payload / RMW operand
	T0    sim.Time  // issue time
	// Scratch the issuer fills between commit and performance.
	CommitT sim.Time
	Old     mem.Value
	New     mem.Value
}

// IssueSink receives completion callbacks for misses issued with an
// IssueCtx. LineCommitted mirrors AcquireShared's done / AcquireExclusive's
// committed callback (synchronous with line installation); LinePerformed
// mirrors AcquireExclusive's performed callback and fires for exclusive
// transactions only.
type IssueSink interface {
	LineCommitted(ctx *IssueCtx, v mem.Value)
	LinePerformed(ctx *IssueCtx)
}

// satisfied reports whether the transaction no longer needs its request
// retransmitted: reads and invalidation-protocol writes once Data arrived
// (performance rides on WriteAck, which the fault model never drops), updates
// once the directory acknowledged.
func (m *mshr) satisfied() bool {
	if m.update {
		return m.performed
	}
	return m.dataArrived
}

// Cache is one processor's cache and weak-ordering bookkeeping.
type Cache struct {
	ID     interconnect.NodeID
	engine *sim.Engine
	fabric interconnect.Fabric
	dir    interconnect.NodeID
	// dirShards spreads the home directory over dirShards nodes starting at
	// dir; every message for address a goes to dir + ShardOf(a, dirShards).
	// The default 1 is the classic single home node.
	dirShards int
	hitLat    sim.Time

	lines map[mem.Addr]*line
	mshrs map[mem.Addr]*mshr

	// lenient tolerates messages explainable as fabric faults (duplicates,
	// stale responses) by ignoring them with a counted stat instead of
	// raising ErrProtocol. Set by the machine when fault injection is on;
	// the default strict mode treats every unexplained message as a bug.
	lenient bool
	// retryTimeout/retryLimit enable bounded request retransmission with
	// exponential backoff: attempt k is resent retryTimeout<<k cycles after
	// the previous one, up to retryLimit resends. Zero timeout disables
	// retransmission (the fault-free default: no timers, no extra events).
	retryTimeout sim.Time
	retryLimit   int
	// seq numbers outgoing transactions (starting at 1 so a zero Seq stays
	// "untagged" for hand-crafted messages in tests).
	seq uint64

	// counter is the paper's outstanding-access counter: incremented on
	// every miss sent, decremented when the transaction's data has arrived
	// (reads) or the access is globally performed (writes/syncs).
	//
	// dataCounter counts only the *ordinary* (non-synchronization) subset.
	// The Section-5.3 reserve machinery must key off this one: a reserve bit
	// guarantees that accesses previous to the reserving synchronization
	// operation are performed before the line is handed over, and those can
	// only be held up by ordinary accesses — which always complete
	// independently, because data forwards are never reserve-stalled. Waiting
	// for the full counter instead deadlocks: a processor that releases lock
	// A and then acquires lock B keeps its own counter positive with the
	// outstanding acquire, which may itself be reserve-stalled at a peer
	// doing the mirror-image release/acquire — a cross reserve-stall cycle
	// neither counter-zero event can break. (Found by the chaos sweep; it is
	// reachable fault-free with adverse network timing.)
	counter       int
	dataCounter   int
	onCounterZero []func()

	// stalledFwds queues remote synchronization requests (forwarded by the
	// directory) that hit a reserved line; they are serviced when the
	// ordinary-access counter reads zero (Section 5.3's stalled-request
	// queue).
	stalledFwds []stalledFwd
	// pendingFwds queues forwards that arrived before our own Data for the
	// same line (message-race guard).
	pendingFwds map[mem.Addr][]stalledFwd

	// Stats counts hits, misses, reserve stalls, etc.
	Stats *stats.Counters

	// Hot-path counter handles (see stats.Hot).
	hHits, hReadMiss, hWriteMiss stats.Hot

	// ictxScratch backs the hit arms of the Ctx issue paths: the context is
	// copied here (the Cache is already heap-resident) so the callback can
	// take a pointer without forcing the caller's stack value to escape.
	ictxScratch IssueCtx

	// rec, when non-nil, receives cycle-observability events (reserve-bit
	// set/clear, reserve-stall spans, retry-backoff windows). Every hook is
	// nil-safe, so the fault-free fast path pays nothing when metrics are off.
	rec *metrics.Recorder
}

type stalledFwd struct {
	src   interconnect.NodeID
	msg   Msg
	since sim.Time // arrival time, for reserve-stall span attribution
}

// New builds a cache attached to the fabric.
func New(id interconnect.NodeID, engine *sim.Engine, fabric interconnect.Fabric, dir interconnect.NodeID, hitLat sim.Time) *Cache {
	if hitLat < 1 {
		hitLat = 1
	}
	c := &Cache{
		ID:          id,
		engine:      engine,
		fabric:      fabric,
		dir:         dir,
		dirShards:   1,
		hitLat:      hitLat,
		lines:       make(map[mem.Addr]*line),
		mshrs:       make(map[mem.Addr]*mshr),
		pendingFwds: make(map[mem.Addr][]stalledFwd),
		Stats:       stats.NewCounters(),
	}
	fabric.Attach(id, c)
	return c
}

// SetDirShards tells the cache the home directory is sharded over n nodes
// (dir..dir+n-1); requests and replies route by ShardOf. Must be set before
// the first access.
func (c *Cache) SetDirShards(n int) {
	if n < 1 {
		n = 1
	}
	c.dirShards = n
}

// dirFor returns the home node for an address.
func (c *Cache) dirFor(a mem.Addr) interconnect.NodeID {
	if c.dirShards == 1 {
		return c.dir
	}
	return c.dir + interconnect.NodeID(ShardOf(a, c.dirShards))
}

// SetLenient switches the cache into fault-tolerant mode: messages
// explainable as fabric artifacts (duplicates, stale responses, stale
// forwards) are counted and dropped instead of raising ErrProtocol.
func (c *Cache) SetLenient(on bool) { c.lenient = on }

// SetRetry enables bounded request retransmission: a request unanswered for
// timeout<<k cycles is resent (attempt k), up to limit resends, after which
// the run fails with ErrRetryExhausted. Must be set before the first access.
func (c *Cache) SetRetry(timeout sim.Time, limit int) {
	c.retryTimeout = timeout
	c.retryLimit = limit
}

// SetMetrics attaches a cycle-observability recorder (nil to detach).
func (c *Cache) SetMetrics(rec *metrics.Recorder) { c.rec = rec }

// maxBackoffShift bounds the exponential-backoff exponent: past it the
// backoff saturates instead of doubling. Without the bound, attempt counts
// beyond ~55 shift retryTimeout past the sign bit and the negative delay
// panics the engine ("schedule before now") — reachable whenever the retry
// budget is configured high under a heavy drop rate.
const maxBackoffShift = 16

// maxBackoffTotal caps any single backoff (and, transitively, the budget sum
// in BackoffBudget) so arithmetic on deadlines can never overflow sim.Time.
const maxBackoffTotal = sim.Time(1) << 40

// backoffFor returns the clamped exponential backoff for one attempt:
// timeout << min(attempts, maxBackoffShift), saturating at maxBackoffTotal.
func backoffFor(timeout sim.Time, attempts int) sim.Time {
	if timeout <= 0 {
		return 0
	}
	if timeout >= maxBackoffTotal {
		return maxBackoffTotal
	}
	shift := attempts
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	b := timeout << uint(shift)
	if b <= 0 || b > maxBackoffTotal {
		return maxBackoffTotal
	}
	return b
}

// backoff returns this cache's clamped backoff for the given attempt count.
func (c *Cache) backoff(attempts int) sim.Time { return backoffFor(c.retryTimeout, attempts) }

// BackoffBudget returns the worst-case total time a requester can legally
// spend sleeping in its retransmission schedule: the sum of every clamped
// backoff across the full retry budget. The directory watchdog must extend
// its deadline by at least this much, or it will condemn a transaction whose
// requester is merely sleeping between attempts.
func BackoffBudget(timeout sim.Time, limit int) sim.Time {
	var total sim.Time
	for k := 0; k <= limit+1; k++ {
		total += backoffFor(timeout, k)
		if total >= maxBackoffTotal {
			return maxBackoffTotal
		}
	}
	return total
}

// fail aborts the simulation with a ProtocolError detected by this cache.
func (c *Cache) fail(kind error, format string, args ...interface{}) {
	c.engine.Fail(&ProtocolError{
		Node: c.ID, Cycle: c.engine.Now(), Reason: fmt.Sprintf(format, args...), Kind: kind,
	})
}

// failMsg aborts the simulation with a ProtocolError triggered by a message.
func (c *Cache) failMsg(src interconnect.NodeID, msg Msg, format string, args ...interface{}) {
	c.engine.Fail(&ProtocolError{
		Node: c.ID, Cycle: c.engine.Now(), Msg: msg, HasMsg: true, From: src,
		Reason: fmt.Sprintf(format, args...),
	})
}

// tolerate handles a message that is only explainable as a fabric fault:
// in lenient mode it is counted and dropped (returning true); in strict mode
// the run fails with a ProtocolError (returning false).
func (c *Cache) tolerate(stat string, src interconnect.NodeID, msg Msg, format string, args ...interface{}) bool {
	if c.lenient {
		c.Stats.Add("tolerated_"+stat, 1)
		return true
	}
	c.failMsg(src, msg, format, args...)
	return false
}

// Counter returns the outstanding-access counter (all access classes).
func (c *Cache) Counter() int { return c.counter }

// DataCounter returns the outstanding *ordinary* access counter — the one the
// reserve machinery keys off (see the field comment for why synchronization
// accesses must not be counted there).
func (c *Cache) DataCounter() int { return c.dataCounter }

// OnCounterZero registers fn to run when the counter reads zero (immediately
// if it already does).
func (c *Cache) OnCounterZero(fn func()) {
	if c.counter == 0 {
		fn()
		return
	}
	c.onCounterZero = append(c.onCounterZero, fn)
}

// Busy reports whether an outstanding transaction exists for the address.
func (c *Cache) Busy(a mem.Addr) bool { return c.mshrs[a] != nil }

// OnFree registers fn to run when the address's MSHR clears (immediately if
// free).
func (c *Cache) OnFree(a mem.Addr, fn func()) {
	m := c.mshrs[a]
	if m == nil {
		fn()
		return
	}
	m.onFree = append(m.onFree, fn)
}

// State returns the line's current state (Invalid if absent).
func (c *Cache) State(a mem.Addr) LineState {
	if l := c.lines[a]; l != nil {
		return l.state
	}
	return Invalid
}

// incCounter / decCounter maintain the paper's counters and fire zero-events.
// sync tells whether the access is a synchronization access, which is counted
// by the full counter only (see the dataCounter field comment).
func (c *Cache) incCounter(sync bool) {
	c.counter++
	if !sync {
		c.dataCounter++
	}
}

func (c *Cache) decCounter(sync bool) {
	c.counter--
	if c.counter < 0 {
		c.fail(nil, "outstanding-access counter went negative")
		c.counter = 0
		c.dataCounter = 0
		return
	}
	if !sync {
		c.dataCounter--
		if c.dataCounter < 0 {
			c.fail(nil, "ordinary-access counter went negative")
			c.dataCounter = 0
			return
		}
		if c.dataCounter == 0 {
			// "All reserve bits are reset when the counter reads zero" — the
			// counter of accesses a reserve can be waiting on, i.e. ordinary
			// ones. Cleared in address order so the recorded clear events (and
			// with them the exported timeline) are deterministic.
			var reserved []mem.Addr
			for a, l := range c.lines {
				if l.reserved {
					reserved = append(reserved, a)
				}
			}
			sort.Slice(reserved, func(i, j int) bool { return reserved[i] < reserved[j] })
			for _, a := range reserved {
				c.lines[a].reserved = false
				c.rec.ReserveCleared(int(c.ID), a)
			}
			// Service remote synchronization requests stalled on reserve bits.
			stalled := c.stalledFwds
			c.stalledFwds = nil
			for _, s := range stalled {
				c.rec.ReserveStalled(int(s.msg.Requester), s.msg.Addr, s.since, c.engine.Now())
				c.serviceFwd(s.src, s.msg)
			}
		}
	}
	if c.counter == 0 {
		// Definition 1's issue condition waits on *all* previous accesses.
		cbs := c.onCounterZero
		c.onCounterZero = nil
		for _, fn := range cbs {
			fn()
		}
	}
}

// sendRequest stamps, records and sends a request, arming the retransmission
// timer when retry is enabled.
func (c *Cache) sendRequest(a mem.Addr, m *mshr, msg Msg) {
	c.seq++
	m.seq = c.seq
	msg.Seq = c.seq
	m.req = msg
	c.fabric.Send(c.ID, c.dirFor(a), msg)
	c.armRetry(a, m)
}

// armRetry schedules the next retransmission check for the MSHR's request.
func (c *Cache) armRetry(a mem.Addr, m *mshr) {
	if c.retryTimeout <= 0 {
		return
	}
	c.engine.After(c.backoff(m.attempts), func() { c.retryCheck(a, m) })
}

// retryCheck fires when a retransmission timer expires: if the transaction is
// still unanswered, the request is resent with exponential backoff; past the
// bounded budget the run fails with ErrRetryExhausted.
func (c *Cache) retryCheck(a mem.Addr, m *mshr) {
	if c.mshrs[a] != m || m.satisfied() {
		return // answered (or retired) in the meantime
	}
	c.resendRequest(a, m)
}

// resendRequest performs one bounded retransmission attempt.
func (c *Cache) resendRequest(a mem.Addr, m *mshr) {
	m.attempts++
	if m.attempts > c.retryLimit {
		c.fail(ErrRetryExhausted, "%s for x%d unanswered after %d attempts (seq %d)",
			m.req.Kind, a, m.attempts, m.seq)
		return
	}
	c.Stats.Add("request_retries", 1)
	c.fabric.Send(c.ID, c.dirFor(a), m.req)
	c.armRetry(a, m)
	// The window until the next retransmission check is attributed to the
	// retry schedule; report-time carving trims it at the answer's arrival.
	c.rec.Backoff(int(c.ID), a, c.engine.Now(), c.engine.Now()+c.backoff(m.attempts))
}

// AcquireShared ensures the line is at least Shared and calls done with its
// value. Callbacks run *synchronously* with the decision (hit) or with Data
// arrival (miss), so the line state they observe cannot be stolen by a
// concurrent forward in between; the processor charges hit latency itself
// before its next step.
func (c *Cache) AcquireShared(a mem.Addr, sync bool, done func(v mem.Value)) {
	if l := c.lines[a]; l != nil && l.state != Invalid {
		c.hHits.Add(c.Stats, "hits", 1)
		done(l.value)
		return
	}
	if c.mshrs[a] != nil {
		c.fail(nil, "AcquireShared with busy MSHR for x%d", a)
		return
	}
	c.hReadMiss.Add(c.Stats, "read_misses", 1)
	c.incCounter(sync)
	m := &mshr{sync: sync, onData: func(v mem.Value) { done(v) }}
	c.mshrs[a] = m
	c.sendRequest(a, m, Msg{Kind: MsgGetS, Addr: a, Sync: sync})
}

// TryReadHit mirrors the hit arm of AcquireShared without taking a
// continuation: if the line is present it charges the hit and returns its
// value. Hot issue paths use it to complete hits without allocating the
// callback closure; on a miss the caller falls back to AcquireShared.
func (c *Cache) TryReadHit(a mem.Addr) (mem.Value, bool) {
	if l := c.lines[a]; l != nil && l.state != Invalid {
		c.hHits.Add(c.Stats, "hits", 1)
		return l.value, true
	}
	return 0, false
}

// TryExclusiveHit is TryReadHit's exclusive counterpart, mirroring the hit
// arm of AcquireExclusive: commit and global performance coincide, and the
// caller applies its write via WriteLocal.
func (c *Cache) TryExclusiveHit(a mem.Addr) (mem.Value, bool) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		c.hHits.Add(c.Stats, "hits", 1)
		return l.value, true
	}
	return 0, false
}

// AcquireSharedCtx is AcquireShared for IssueSink issuers: identical
// protocol behavior and hit/miss accounting, but the continuation state
// travels in the MSHR as an IssueCtx value instead of captured closures.
func (c *Cache) AcquireSharedCtx(a mem.Addr, sync bool, is IssueSink, ctx IssueCtx) {
	if l := c.lines[a]; l != nil && l.state != Invalid {
		c.hHits.Add(c.Stats, "hits", 1)
		c.ictxScratch = ctx
		is.LineCommitted(&c.ictxScratch, l.value)
		return
	}
	if c.mshrs[a] != nil {
		c.fail(nil, "AcquireShared with busy MSHR for x%d", a)
		return
	}
	c.hReadMiss.Add(c.Stats, "read_misses", 1)
	c.incCounter(sync)
	m := &mshr{sync: sync, issuer: is, ictx: ctx}
	c.mshrs[a] = m
	c.sendRequest(a, m, Msg{Kind: MsgGetS, Addr: a, Sync: sync})
}

// AcquireExclusiveCtx is AcquireExclusive for IssueSink issuers (see
// AcquireSharedCtx). On a hit, commit and performance coincide:
// LineCommitted then LinePerformed run synchronously, like the committed and
// performed callbacks would.
func (c *Cache) AcquireExclusiveCtx(a mem.Addr, sync bool, is IssueSink, ctx IssueCtx) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		c.hHits.Add(c.Stats, "hits", 1)
		c.ictxScratch = ctx
		is.LineCommitted(&c.ictxScratch, l.value)
		is.LinePerformed(&c.ictxScratch)
		return
	}
	if c.mshrs[a] != nil {
		c.fail(nil, "AcquireExclusive with busy MSHR for x%d", a)
		return
	}
	c.hWriteMiss.Add(c.Stats, "write_misses", 1)
	c.incCounter(sync)
	m := &mshr{exclusive: true, sync: sync, issuer: is, ictx: ctx}
	c.mshrs[a] = m
	c.sendRequest(a, m, Msg{Kind: MsgGetX, Addr: a, Sync: sync})
}

// AcquireExclusive ensures the line is Exclusive. committed runs at the
// commit point with the line's pre-access value (the caller then applies its
// write via WriteLocal); performed runs when the access is globally performed
// (nil allowed). sync marks a synchronization access. Like AcquireShared,
// callbacks are synchronous with the moment the line is exclusively held, so
// WriteLocal/Reserve inside committed can never observe a stolen line.
func (c *Cache) AcquireExclusive(a mem.Addr, sync bool, committed func(old mem.Value), performed func()) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		// Sole copy: commit and global performance coincide.
		c.hHits.Add(c.Stats, "hits", 1)
		committed(l.value)
		if performed != nil {
			performed()
		}
		return
	}
	if c.mshrs[a] != nil {
		c.fail(nil, "AcquireExclusive with busy MSHR for x%d", a)
		return
	}
	c.hWriteMiss.Add(c.Stats, "write_misses", 1)
	c.incCounter(sync)
	m := &mshr{exclusive: true, sync: sync, onData: committed, onPerformed: performed}
	c.mshrs[a] = m
	c.sendRequest(a, m, Msg{Kind: MsgGetX, Addr: a, Sync: sync})
}

// WriteUpdate performs a data write under the write-update protocol: the
// local copy (if any) commits immediately; the value travels to the directory,
// which updates memory and multicasts it to the other sharers. performed runs
// when every sharer has acknowledged (nil allowed). Exclusive hits complete
// locally like in the invalidation protocol. The caller must have checked
// Busy first.
func (c *Cache) WriteUpdate(a mem.Addr, v mem.Value, performed func()) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		c.hHits.Add(c.Stats, "hits", 1)
		l.value = v
		if performed != nil {
			performed()
		}
		return
	}
	if c.mshrs[a] != nil {
		c.fail(nil, "WriteUpdate with busy MSHR for x%d", a)
		return
	}
	if l := c.lines[a]; l != nil {
		l.value = v // provisional local commit; directory order prevails
	}
	c.Stats.Add("update_writes", 1)
	c.incCounter(false)
	m := &mshr{exclusive: true, update: true, dataArrived: true, onPerformed: performed}
	c.mshrs[a] = m
	c.sendRequest(a, m, Msg{Kind: MsgUpdateReq, Addr: a, Value: v})
}

// onUpdate applies a directory-serialized update to the local copy.
func (c *Cache) onUpdate(msg Msg) {
	if l := c.lines[msg.Addr]; l != nil {
		if msg.Epoch != 0 && msg.Epoch <= l.epoch {
			// Duplicated or delayed update from a transaction serialized
			// before this copy was granted: applying it would travel back in
			// directory order.
			if !c.tolerate("stale_update", c.dirFor(msg.Addr), msg, "stale Update (line epoch %d)", l.epoch) {
				return
			}
			c.fabric.Send(c.ID, c.dirFor(msg.Addr), Msg{Kind: MsgUpdateAck, Addr: msg.Addr, Epoch: msg.Epoch})
			return
		}
		l.value = msg.Value
	} else if m := c.mshrs[msg.Addr]; m != nil && !m.dataArrived {
		// The update overtook our pending fill: remember it so the fill
		// installs the newer value.
		v := msg.Value
		m.updateOverride = &v
	}
	c.Stats.Add("updates_received", 1)
	c.fabric.Send(c.ID, c.dirFor(msg.Addr), Msg{Kind: MsgUpdateAck, Addr: msg.Addr, Epoch: msg.Epoch})
}

// WriteLocal commits a value into an Exclusive line. It is called by the
// processor inside a committed callback (or on an exclusive hit).
func (c *Cache) WriteLocal(a mem.Addr, v mem.Value) {
	l := c.lines[a]
	if l == nil || l.state != Exclusive {
		c.fail(nil, "WriteLocal to non-exclusive line x%d", a)
		return
	}
	l.value = v
}

// Reserve sets the reserve bit on an Exclusive line; the bit clears
// automatically when the ordinary-access counter reads zero.
func (c *Cache) Reserve(a mem.Addr) {
	l := c.lines[a]
	if l == nil || l.state != Exclusive {
		c.fail(nil, "Reserve on non-exclusive line x%d", a)
		return
	}
	if c.dataCounter == 0 {
		return // no ordinary access outstanding: reservation would clear immediately
	}
	l.reserved = true
	c.Stats.Add("reserves_set", 1)
	c.rec.ReserveSet(int(c.ID), a)
}

// Reserved reports whether the line currently has its reserve bit set.
func (c *Cache) Reserved(a mem.Addr) bool {
	l := c.lines[a]
	return l != nil && l.reserved
}

// Deliver implements interconnect.Endpoint.
func (c *Cache) Deliver(src interconnect.NodeID, m interconnect.Message) {
	if c.engine.Failed() != nil {
		return
	}
	msg, ok := m.(Msg)
	if !ok {
		c.engine.Fail(&ProtocolError{
			Node: c.ID, Cycle: c.engine.Now(),
			Reason: fmt.Sprintf("non-protocol message %T", m),
		})
		return
	}
	switch msg.Kind {
	case MsgData:
		c.onDataArrival(src, msg)
	case MsgWriteAck:
		c.onWriteAck(src, msg)
	case MsgInv:
		c.onInv(src, msg)
	case MsgUpdate:
		c.onUpdate(msg)
	case MsgFwdS, MsgFwdX:
		c.onFwd(src, msg)
	case MsgNack:
		c.onNack(src, msg)
	default:
		c.failMsg(src, msg, "unexpected %s", msg.Kind)
	}
}

func (c *Cache) onDataArrival(src interconnect.NodeID, msg Msg) {
	m := c.mshrs[msg.Addr]
	if m == nil {
		c.tolerate("stale_data", src, msg, "Data for x%d with no MSHR", msg.Addr)
		return
	}
	if msg.Seq != 0 && msg.Seq != m.seq {
		c.tolerate("stale_data", src, msg, "Data for x%d with stale seq (MSHR seq %d)", msg.Addr, m.seq)
		return
	}
	if m.dataArrived {
		c.tolerate("dup_data", src, msg, "duplicate Data for x%d", msg.Addr)
		return
	}
	v := msg.Value
	if m.updateOverride != nil {
		// A directory-serialized update overtook this fill: install (and
		// return) the newer value — the access legally serializes after it.
		v = *m.updateOverride
	}
	m.dataArrived = true
	m.value = v
	m.excl = msg.Excl
	if msg.Performed {
		m.performed = true
	}
	// Install the line at commit.
	st := Shared
	if msg.Excl {
		st = Exclusive
	}
	if m.invWhilePend && !msg.Excl {
		// An invalidation overtook this read: bind the value to the waiting
		// read but do not cache the line.
		st = Invalid
	}
	if st == Invalid {
		delete(c.lines, msg.Addr)
	} else {
		c.lines[msg.Addr] = &line{state: st, value: v, epoch: msg.Epoch}
	}
	// Synchronous with installation: the committed callback (which applies
	// the processor's write) runs before any other message can touch the
	// line.
	if m.issuer != nil {
		m.issuer.LineCommitted(&m.ictx, v)
	} else if m.onData != nil {
		m.onData(v)
	}
	c.maybeCompleteMSHR(msg.Addr, m)
}

func (c *Cache) onWriteAck(src interconnect.NodeID, msg Msg) {
	m := c.mshrs[msg.Addr]
	if m == nil {
		c.tolerate("stale_writeack", src, msg, "WriteAck for x%d with no MSHR", msg.Addr)
		return
	}
	if msg.Seq != 0 && msg.Seq != m.seq {
		c.tolerate("stale_writeack", src, msg, "WriteAck for x%d with stale seq (MSHR seq %d)", msg.Addr, m.seq)
		return
	}
	m.performed = true
	c.maybeCompleteMSHR(msg.Addr, m)
}

// onNack handles a directory rejection of a request (bounded queue full): the
// request is retried with exponential backoff under the same bounded budget
// as timeout-triggered retransmission.
func (c *Cache) onNack(src interconnect.NodeID, msg Msg) {
	m := c.mshrs[msg.Addr]
	if m == nil || (msg.Seq != 0 && msg.Seq != m.seq) || m.satisfied() {
		c.tolerate("stale_nack", src, msg, "Nack for x%d with no matching transaction", msg.Addr)
		return
	}
	if c.retryTimeout <= 0 {
		c.failMsg(src, msg, "Nack for x%d but retries are disabled", msg.Addr)
		return
	}
	c.Stats.Add("nacks_received", 1)
	backoff := c.backoff(m.attempts)
	c.engine.After(backoff, func() { c.retryCheck(msg.Addr, m) })
	c.rec.Backoff(int(c.ID), msg.Addr, c.engine.Now(), c.engine.Now()+backoff)
	m.attempts++
	if m.attempts > c.retryLimit {
		c.fail(ErrRetryExhausted, "%s for x%d NACKed past the retry budget (%d attempts)",
			m.req.Kind, msg.Addr, m.attempts)
	}
}

// maybeCompleteMSHR retires the transaction once all its parts are in:
// reads need Data; writes need Data plus global performance.
func (c *Cache) maybeCompleteMSHR(a mem.Addr, m *mshr) {
	if c.mshrs[a] != m || !m.dataArrived {
		return
	}
	if m.exclusive && !m.performed {
		return
	}
	delete(c.mshrs, a)
	if m.exclusive && m.issuer != nil {
		m.issuer.LinePerformed(&m.ictx)
	} else if m.exclusive && m.onPerformed != nil {
		m.onPerformed()
	}
	c.decCounter(m.sync)
	frees := m.onFree
	m.onFree = nil
	for _, fn := range frees {
		fn()
	}
	// Forwards that raced ahead of our Data can be serviced now.
	if pend := c.pendingFwds[a]; len(pend) > 0 {
		delete(c.pendingFwds, a)
		for _, f := range pend {
			c.onFwd(f.src, f.msg)
		}
	}
}

func (c *Cache) onInv(src interconnect.NodeID, msg Msg) {
	if l := c.lines[msg.Addr]; l != nil && msg.Epoch != 0 && msg.Epoch <= l.epoch {
		// The invalidation belongs to a transaction serialized before this
		// copy was granted: a duplicated or delayed artifact. Obeying it
		// would discard a copy the directory still believes we hold.
		c.tolerate("stale_inv", src, msg, "stale Inv for x%d (line epoch %d)", msg.Addr, l.epoch)
		return
	}
	if m := c.mshrs[msg.Addr]; m != nil && !m.dataArrived {
		// The invalidation overtook our pending fill.
		m.invWhilePend = true
	}
	if l := c.lines[msg.Addr]; l != nil {
		delete(c.lines, msg.Addr)
	}
	c.Stats.Add("invalidations", 1)
	c.fabric.Send(c.ID, c.dirFor(msg.Addr), Msg{Kind: MsgInvAck, Addr: msg.Addr, Epoch: msg.Epoch})
}

// onFwd handles FwdS/FwdX from the directory: supply the line to the
// requester. Synchronization requests for a reserved line stall until the
// ordinary-access counter reads zero.
func (c *Cache) onFwd(src interconnect.NodeID, msg Msg) {
	// A transaction of our own is still in flight for this line (our Data
	// has not arrived, or our write is not yet performed): park the forward
	// until the MSHR completes so the local access stays atomic.
	if c.mshrs[msg.Addr] != nil {
		c.pendingFwds[msg.Addr] = append(c.pendingFwds[msg.Addr], stalledFwd{src: src, msg: msg, since: c.engine.Now()})
		return
	}
	l := c.lines[msg.Addr]
	if l == nil || l.state != Exclusive {
		c.tolerate("stale_fwd", src, msg, "%s for x%d we do not own", msg.Kind, msg.Addr)
		return
	}
	if msg.Epoch != 0 && msg.Epoch <= l.epoch {
		// The forward was issued before this copy was granted: servicing it
		// would hand the line to a transaction that already completed.
		c.tolerate("stale_fwd", src, msg, "stale %s for x%d (line epoch %d)", msg.Kind, msg.Addr, l.epoch)
		return
	}
	if msg.Sync && l.reserved {
		// Section 5.3: a synchronization request routed to a processor is
		// serviced only if the reserve bit is reset; otherwise it is
		// stalled until the ordinary-access counter reads zero.
		c.Stats.Add("reserve_stalls", 1)
		c.stalledFwds = append(c.stalledFwds, stalledFwd{src: src, msg: msg, since: c.engine.Now()})
		return
	}
	c.serviceFwd(src, msg)
}

func (c *Cache) serviceFwd(src interconnect.NodeID, msg Msg) {
	l := c.lines[msg.Addr]
	if l == nil || l.state != Exclusive {
		c.tolerate("stale_fwd", src, msg, "servicing %s for x%d we no longer own", msg.Kind, msg.Addr)
		return
	}
	if l.reserved {
		c.rec.ReserveCleared(int(c.ID), msg.Addr)
	}
	switch msg.Kind {
	case MsgFwdS:
		l.state = Shared
		l.reserved = false
		l.epoch = msg.Epoch
		c.fabric.Send(c.ID, msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Performed: true, Seq: msg.Seq, Epoch: msg.Epoch})
		c.fabric.Send(c.ID, c.dirFor(msg.Addr), Msg{Kind: MsgDowngrade, Addr: msg.Addr, Value: l.value, Epoch: msg.Epoch})
	case MsgFwdX:
		v := l.value
		delete(c.lines, msg.Addr)
		c.fabric.Send(c.ID, msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Value: v, Excl: true, Performed: true, Seq: msg.Seq, Epoch: msg.Epoch})
		c.fabric.Send(c.ID, c.dirFor(msg.Addr), Msg{Kind: MsgTransfer, Addr: msg.Addr, Value: v, Epoch: msg.Epoch})
	default:
		c.failMsg(src, msg, "serviceFwd of %s", msg.Kind)
	}
}

// Snoop returns the cached value for final-state collection after a run (the
// machine asks the owner first, then memory).
func (c *Cache) Snoop(a mem.Addr) (mem.Value, LineState) {
	if l := c.lines[a]; l != nil {
		return l.value, l.state
	}
	return 0, Invalid
}
