// Package cache implements the timed directory-based write-back invalidation
// protocol of Section 5.2, including the Section-5.3 weak-ordering machinery:
// the commit vs globally-performed distinction, per-processor outstanding
// counters, per-line reserve bits, and the stalling of remote synchronization
// requests at a reserving owner.
//
// Protocol summary (line size = one word, infinite capacity, full-map
// directory):
//
//	cache --GetS--> dir                      read miss
//	cache --GetX--> dir                      write/sync miss or upgrade
//	dir --Data--> cache                      line (possibly still awaiting acks)
//	dir --Inv--> sharers; sharer --InvAck--> dir
//	dir --WriteAck--> cache                  all invalidations acknowledged
//	dir --FwdS/FwdX--> owner                 route request to exclusive owner
//	owner --Data--> requester (direct)       cache-to-cache transfer
//	owner --Downgrade/Transfer--> dir        close the forwarded transaction
//
// As the paper's protocol allows, on a write miss to a shared line the
// directory forwards the line to the requester in parallel with sending
// invalidations; the requester's write then *commits* on Data arrival and is
// *globally performed* on WriteAck.
package cache

import (
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
)

// MsgKind enumerates protocol messages.
type MsgKind uint8

const (
	// MsgGetS requests a shared copy (read miss).
	MsgGetS MsgKind = iota
	// MsgGetX requests an exclusive copy (write or synchronization miss).
	MsgGetX
	// MsgData delivers the line to a requester.
	MsgData
	// MsgWriteAck tells the requester all invalidations were acknowledged
	// (the write is globally performed).
	MsgWriteAck
	// MsgInv tells a sharer to invalidate its copy.
	MsgInv
	// MsgInvAck acknowledges an invalidation to the directory.
	MsgInvAck
	// MsgFwdS asks the exclusive owner to supply a shared copy to Requester
	// and downgrade.
	MsgFwdS
	// MsgFwdX asks the exclusive owner to transfer the line to Requester
	// and invalidate.
	MsgFwdX
	// MsgDowngrade returns ownership (with the current value) to the
	// directory after a FwdS.
	MsgDowngrade
	// MsgTransfer confirms an ownership hand-off to the directory after a
	// FwdX.
	MsgTransfer
	// MsgUpdateReq (cache→dir) carries a data write's value in the
	// write-update protocol variant: the directory updates memory and
	// multicasts MsgUpdate to the other sharers instead of invalidating.
	MsgUpdateReq
	// MsgUpdate (dir→sharer) delivers the new value of a line.
	MsgUpdate
	// MsgUpdateAck (sharer→dir) acknowledges an update.
	MsgUpdateAck
	// MsgNack (dir→cache) rejects a request the directory cannot queue (its
	// bounded per-line queue is full); the requester backs off and retries.
	MsgNack
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	names := [...]string{"GetS", "GetX", "Data", "WriteAck", "Inv", "InvAck",
		"FwdS", "FwdX", "Downgrade", "Transfer", "UpdateReq", "Update", "UpdateAck", "Nack"}
	if int(k) < len(names) {
		return names[k]
	}
	return "Msg?"
}

// Msg is a protocol message. Which fields are meaningful depends on Kind.
type Msg struct {
	Kind  MsgKind
	Addr  mem.Addr
	Value mem.Value
	// Requester is carried by FwdS/FwdX: the cache the owner must supply.
	Requester interconnect.NodeID
	// Sync marks a request originating from a synchronization operation;
	// reserve-bit stalling applies only to these (Section 5.3).
	Sync bool
	// Excl marks Data granting exclusive (dirty) rights.
	Excl bool
	// Performed marks Data whose transaction is already globally performed
	// (no invalidation acknowledgements outstanding).
	Performed bool
	// Seq is the requester's per-cache transaction number. Requests carry
	// it; Data/WriteAck/Nack echo it so the requester can discard stale or
	// duplicated responses after a retry. FwdS/FwdX relay the requester's
	// Seq so the owner's cache-to-cache Data echoes it too.
	Seq uint64
	// Epoch is the directory's per-line transaction number, stamped on
	// every message the directory emits for a transaction (Data, Inv,
	// Update, FwdS, FwdX) and echoed on the messages that close it (InvAck,
	// UpdateAck, Downgrade, Transfer). It makes duplicated or delayed
	// acknowledgements and forwards self-describing: anything tagged with a
	// closed epoch is a fabric artifact, not a protocol event.
	Epoch uint64
}
