package cache

import (
	"errors"
	"strings"
	"testing"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
)

// ownLine gives c an Exclusive copy of a (value v) by running a full GetX
// transaction.
func ownLine(t *testing.T, r *rig, c *Cache, a mem.Addr, v mem.Value) {
	t.Helper()
	c.AcquireExclusive(a, false, func(mem.Value) { c.WriteLocal(a, v) }, nil)
	r.run(t)
	if c.State(a) != Exclusive {
		t.Fatalf("setup: line x%d state = %s, want E", a, c.State(a))
	}
}

// TestProtocolErrors provokes, one by one, every condition that used to crash
// the simulator with panic() — plus the strict-mode message checks added with
// the fault-tolerance work — and asserts each surfaces as an ErrProtocol
// through the engine instead.
func TestProtocolErrors(t *testing.T) {
	cases := []struct {
		name string
		// provoke drives the rig into the violating state.
		provoke func(t *testing.T, r *rig)
		// reason must appear in the resulting ProtocolError.
		reason string
	}{
		// Former panics in cache.go.
		{"counter underflow", func(t *testing.T, r *rig) {
			r.c0.decCounter(false)
		}, "counter went negative"},
		{"AcquireShared on busy MSHR", func(t *testing.T, r *rig) {
			r.c0.AcquireShared(1, false, func(mem.Value) {})
			r.c0.AcquireShared(1, false, func(mem.Value) {})
		}, "AcquireShared with busy MSHR"},
		{"AcquireExclusive on busy MSHR", func(t *testing.T, r *rig) {
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
		}, "AcquireExclusive with busy MSHR"},
		{"WriteUpdate on busy MSHR", func(t *testing.T, r *rig) {
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
			r.c0.WriteUpdate(1, 5, nil)
		}, "WriteUpdate with busy MSHR"},
		{"WriteLocal to non-exclusive line", func(t *testing.T, r *rig) {
			r.c0.WriteLocal(9, 1)
		}, "WriteLocal to non-exclusive"},
		{"Reserve on non-exclusive line", func(t *testing.T, r *rig) {
			r.c0.Reserve(9)
		}, "Reserve on non-exclusive"},
		{"non-protocol message at cache", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, "not a protocol message")
		}, "non-protocol message"},
		{"request delivered to cache", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, Msg{Kind: MsgGetS, Addr: 1})
		}, "unexpected GetS"},
		{"Data with no MSHR", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, Msg{Kind: MsgData, Addr: 1, Value: 3})
		}, "Data for x1 with no MSHR"},
		{"WriteAck with no MSHR", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, Msg{Kind: MsgWriteAck, Addr: 1})
		}, "WriteAck for x1 with no MSHR"},
		{"forward for unowned line", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, Msg{Kind: MsgFwdS, Addr: 1, Requester: 1})
		}, "we do not own"},
		{"serviced forward after losing the line", func(t *testing.T, r *rig) {
			r.c0.serviceFwd(2, Msg{Kind: MsgFwdX, Addr: 9, Requester: 1})
		}, "no longer own"},
		{"serviceFwd of a non-forward", func(t *testing.T, r *rig) {
			ownLine(t, r, r.c0, 1, 7)
			r.c0.serviceFwd(2, Msg{Kind: MsgData, Addr: 1})
		}, "serviceFwd of Data"},

		// Strict-mode checks on the recovery machinery (lenient mode tolerates
		// these; without faults they are protocol bugs).
		{"Data with stale seq", func(t *testing.T, r *rig) {
			r.c0.AcquireShared(1, false, func(mem.Value) {})
			r.c0.Deliver(2, Msg{Kind: MsgData, Addr: 1, Seq: 99})
		}, "stale seq"},
		{"duplicate Data", func(t *testing.T, r *rig) {
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
			r.c0.Deliver(2, Msg{Kind: MsgData, Addr: 1, Seq: 1, Excl: true})
			r.c0.Deliver(2, Msg{Kind: MsgData, Addr: 1, Seq: 1, Excl: true})
		}, "duplicate Data"},
		{"WriteAck with stale seq", func(t *testing.T, r *rig) {
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
			r.c0.Deliver(2, Msg{Kind: MsgWriteAck, Addr: 1, Seq: 99})
		}, "stale seq"},
		{"stale invalidation", func(t *testing.T, r *rig) {
			ownLine(t, r, r.c0, 1, 7)
			r.c0.Deliver(2, Msg{Kind: MsgInv, Addr: 1, Epoch: 1})
		}, "stale Inv"},
		{"stale forward", func(t *testing.T, r *rig) {
			ownLine(t, r, r.c0, 1, 7)
			r.c0.Deliver(2, Msg{Kind: MsgFwdS, Addr: 1, Requester: 1, Epoch: 1})
		}, "stale FwdS"},
		{"Nack with no transaction", func(t *testing.T, r *rig) {
			r.c0.Deliver(2, Msg{Kind: MsgNack, Addr: 1})
		}, "no matching transaction"},
		{"Nack with retries disabled", func(t *testing.T, r *rig) {
			r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
			r.c0.Deliver(2, Msg{Kind: MsgNack, Addr: 1, Seq: 1})
		}, "retries are disabled"},

		// Former panics in directory.go.
		{"non-protocol message at directory", func(t *testing.T, r *rig) {
			r.dir.Deliver(0, 42)
		}, "non-protocol message"},
		{"response delivered to directory", func(t *testing.T, r *rig) {
			r.dir.Deliver(0, Msg{Kind: MsgData, Addr: 1})
		}, "unexpected Data"},
		{"directory processing a non-request", func(t *testing.T, r *rig) {
			r.dir.process(r.dir.line(1), 0, Msg{Kind: MsgData, Addr: 1})
		}, "process Data"},
		{"stray InvAck", func(t *testing.T, r *rig) {
			r.dir.Deliver(0, Msg{Kind: MsgInvAck, Addr: 5})
		}, "stray InvAck"},
		{"stray Downgrade", func(t *testing.T, r *rig) {
			r.dir.Deliver(0, Msg{Kind: MsgDowngrade, Addr: 5})
		}, "stray Downgrade"},
		{"stray Transfer", func(t *testing.T, r *rig) {
			r.dir.Deliver(0, Msg{Kind: MsgTransfer, Addr: 5})
		}, "stray Transfer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, map[mem.Addr]mem.Value{1: 0})
			tc.provoke(t, r)
			err := r.engine.Failed()
			if err == nil {
				// Some provocations need the event loop to surface the error.
				err = r.engine.Run(nil)
			}
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("err = %v, want ErrProtocol", err)
			}
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %T, want *ProtocolError", err)
			}
			if !strings.Contains(pe.Reason, tc.reason) {
				t.Errorf("reason %q does not contain %q", pe.Reason, tc.reason)
			}
			if pe.Error() == "" {
				t.Error("empty Error() rendering")
			}
		})
	}
}

// dropFabric wraps a fabric and silently discards messages selected by drop —
// a deterministic single-fault harness for the retry and watchdog paths.
type dropFabric struct {
	interconnect.Fabric
	drop func(src, dst interconnect.NodeID, m interconnect.Message) bool
}

func (f *dropFabric) Send(src, dst interconnect.NodeID, m interconnect.Message) {
	if f.drop != nil && f.drop(src, dst, m) {
		return
	}
	f.Fabric.Send(src, dst, m)
}

// newDropRig builds the standard rig with a dropping fabric between the nodes.
func newDropRig(t *testing.T, drop func(src, dst interconnect.NodeID, m interconnect.Message) bool) *rig {
	t.Helper()
	r := newRig(t, map[mem.Addr]mem.Value{1: 0})
	// Rewire all three endpoints onto the dropping fabric. Attach replaces
	// the endpoint registration; Send interposition is what matters.
	df := &dropFabric{Fabric: r.c0.fabric, drop: drop}
	r.c0.fabric = df
	r.c1.fabric = df
	r.dir.fabric = df
	return r
}

// TestRetryRecoversFromDroppedRequest drops the first GetS and asserts the
// retransmission timer completes the access anyway.
func TestRetryRecoversFromDroppedRequest(t *testing.T) {
	dropped := false
	r := newDropRig(t, func(src, dst interconnect.NodeID, m interconnect.Message) bool {
		if msg, ok := m.(Msg); ok && msg.Kind == MsgGetS && !dropped {
			dropped = true
			return true
		}
		return false
	})
	r.c0.SetRetry(20, 3)
	var got mem.Value = -1
	r.c0.AcquireShared(1, false, func(v mem.Value) { got = v })
	r.run(t)
	if !dropped {
		t.Fatal("setup never dropped the request")
	}
	if got != 0 {
		t.Fatalf("read = %d, want 0 (recovered by retry)", got)
	}
	if n := r.c0.Stats.Get("request_retries"); n != 1 {
		t.Errorf("request_retries = %d, want 1", n)
	}
}

// TestRetryBudgetExhausts drops every GetX and asserts the bounded budget
// surfaces ErrRetryExhausted (which is also an ErrProtocol).
func TestRetryBudgetExhausts(t *testing.T) {
	r := newDropRig(t, func(src, dst interconnect.NodeID, m interconnect.Message) bool {
		msg, ok := m.(Msg)
		return ok && msg.Kind == MsgGetX
	})
	r.c0.SetRetry(10, 2)
	r.c0.AcquireExclusive(1, false, func(mem.Value) {}, nil)
	err := r.engine.Run(nil)
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("err = %v, want ErrRetryExhausted", err)
	}
	if !errors.Is(err, ErrProtocol) {
		t.Error("ErrRetryExhausted must also match ErrProtocol")
	}
}

// TestWatchdogNamesStuckTransaction kills the directory's forward so the
// transaction can never close, and asserts the watchdog aborts the run with
// ErrWatchdog instead of spinning forever.
func TestWatchdogNamesStuckTransaction(t *testing.T) {
	r := newDropRig(t, func(src, dst interconnect.NodeID, m interconnect.Message) bool {
		msg, ok := m.(Msg)
		return ok && (msg.Kind == MsgFwdX || msg.Kind == MsgFwdS)
	})
	r.dir.EnableWatchdog(50, 200)
	ownLine(t, r, r.c0, 1, 7)
	r.c1.AcquireExclusive(1, false, func(mem.Value) {}, nil)
	err := r.engine.Run(nil)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) || !pe.Dir {
		t.Fatalf("err = %v, want a directory-attributed ProtocolError", err)
	}
	if !strings.Contains(pe.Reason, "x1") {
		t.Errorf("watchdog reason %q does not name the stuck line", pe.Reason)
	}
}

// TestLenientToleratesFabricArtifacts delivers messages only explainable as
// fabric faults to lenient endpoints and asserts they are counted, not fatal.
func TestLenientToleratesFabricArtifacts(t *testing.T) {
	r := newRig(t, map[mem.Addr]mem.Value{1: 0})
	r.c0.SetLenient(true)
	r.dir.SetLenient(true)
	r.c0.Deliver(2, Msg{Kind: MsgData, Addr: 1, Value: 3})   // stale Data
	r.dir.Deliver(0, Msg{Kind: MsgInvAck, Addr: 5})          // stray ack
	r.dir.Deliver(0, Msg{Kind: MsgTransfer, Addr: 5})        // stray transfer
	if err := r.engine.Failed(); err != nil {
		t.Fatalf("lenient mode failed the run: %v", err)
	}
	if n := r.c0.Stats.Get("tolerated_stale_data"); n != 1 {
		t.Errorf("tolerated_stale_data = %d, want 1", n)
	}
	if n := r.dir.Stats.Get("tolerated_stray_ack"); n != 1 {
		t.Errorf("tolerated_stray_ack = %d, want 1", n)
	}
	if n := r.dir.Stats.Get("tolerated_stray_transfer"); n != 1 {
		t.Errorf("tolerated_stray_transfer = %d, want 1", n)
	}
	// The protocol still works afterwards.
	var got mem.Value = -1
	r.c1.AcquireShared(1, false, func(v mem.Value) { got = v })
	r.run(t)
	if got != 0 {
		t.Fatalf("read after tolerated artifacts = %d, want 0", got)
	}
}
