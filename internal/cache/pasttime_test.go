package cache

import (
	"errors"
	"testing"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// TestSchedulePastSurfacesThroughCacheCallbacks drives the two callback seams
// the processor schedules continuation work through — OnFree (the MSHR
// same-address stall) and OnCounterZero (Definition 1's issue wait) — and
// asserts a past-time schedule issued from inside either callback surfaces
// from engine.Run as the typed sim.ErrSchedulePast, not a panic and not a
// silently dropped event. This is the propagation contract the proc package
// relies on: every continuation it schedules after a cache callback runs on
// the engine, so a time-arithmetic bug anywhere in that chain must become a
// diagnosable run failure.
func TestSchedulePastSurfacesThroughCacheCallbacks(t *testing.T) {
	t.Run("OnFree", func(t *testing.T) {
		r := newRig(t, map[mem.Addr]mem.Value{7: 1})
		// Open a transaction so address 7 is Busy, then register an OnFree
		// continuation that (buggily) schedules into the past when it fires.
		r.c0.AcquireShared(7, false, func(v mem.Value) {})
		if !r.c0.Busy(7) {
			t.Fatal("address 7 should have an open MSHR")
		}
		r.c0.OnFree(7, func() {
			r.engine.At(0, func() {}) // fires at transaction completion, now > 0
		})
		err := r.engine.Run(nil)
		if !errors.Is(err, sim.ErrSchedulePast) {
			t.Fatalf("Run = %v, want ErrSchedulePast", err)
		}
	})
	t.Run("OnCounterZero", func(t *testing.T) {
		r := newRig(t, map[mem.Addr]mem.Value{7: 1})
		r.c0.AcquireShared(7, false, func(v mem.Value) {})
		if r.c0.Counter() == 0 {
			t.Fatal("counter should be nonzero with a transaction outstanding")
		}
		r.c0.OnCounterZero(func() {
			r.engine.At(0, func() {})
		})
		err := r.engine.Run(nil)
		if !errors.Is(err, sim.ErrSchedulePast) {
			t.Fatalf("Run = %v, want ErrSchedulePast", err)
		}
	})
}

// TestRetryPathNeverSchedulesPast exercises the MSHR retransmission caller:
// a deep retry schedule against a directory that drops every request, on
// both engines. The run must end in the retry machinery's own typed error —
// with ErrSchedulePast never recorded along the way. If the backoff clamp
// regressed (the historical overflow made `timeout << attempts` negative),
// this run would fail with ErrSchedulePast instead, and the assertion names
// the guilty caller.
func TestRetryPathNeverSchedulesPast(t *testing.T) {
	for name, mk := range map[string]func() *sim.Engine{
		"calendar": func() *sim.Engine { return sim.NewEngine(0, 0) },
		"heap":     func() *sim.Engine { return sim.NewHeapEngine(0, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			engine := mk()
			net := interconnect.NewNetwork(engine, 1, 0, nil, true)
			net.Attach(1, blackhole{})
			c := New(0, engine, net, 1, 1)
			c.SetRetry(128, 80) // deep enough to cross the old overflow threshold
			c.AcquireShared(2, false, func(v mem.Value) {})
			err := engine.Run(nil)
			if errors.Is(err, sim.ErrSchedulePast) {
				t.Fatalf("MSHR retransmission scheduled into the past: %v", err)
			}
			if !errors.Is(err, ErrRetryExhausted) {
				t.Fatalf("Run = %v, want ErrRetryExhausted", err)
			}
		})
	}
}
