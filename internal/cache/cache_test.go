package cache

import (
	"errors"
	"testing"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// rig wires two caches and a directory over a unit-latency network.
type rig struct {
	engine *sim.Engine
	c0, c1 *Cache
	dir    *DirShard
}

func newRig(t *testing.T, init map[mem.Addr]mem.Value) *rig {
	t.Helper()
	e := sim.NewEngine(1_000_000, 1_000_000)
	net := interconnect.NewNetwork(e, 2, 0, nil, true)
	dir := NewDirectory(2, e, net, 1, init)
	c0 := New(0, e, net, 2, 1)
	c1 := New(1, e, net, 2, 1)
	return &rig{engine: e, c0: c0, c1: c1, dir: dir}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.engine.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestReadMissInstallsShared(t *testing.T) {
	r := newRig(t, map[mem.Addr]mem.Value{7: 42})
	var got mem.Value = -1
	r.c0.AcquireShared(7, false, func(v mem.Value) { got = v })
	r.run(t)
	if got != 42 {
		t.Fatalf("read = %d", got)
	}
	if r.c0.State(7) != Shared {
		t.Errorf("state = %s, want S", r.c0.State(7))
	}
	if r.c0.Counter() != 0 {
		t.Errorf("counter = %d, want 0 after completion", r.c0.Counter())
	}
	// Second read is a hit: no new transaction.
	misses := r.c0.Stats.Get("read_misses")
	r.c0.AcquireShared(7, false, func(v mem.Value) { got = v })
	r.run(t)
	if r.c0.Stats.Get("read_misses") != misses {
		t.Error("second read should hit")
	}
}

func TestWriteMissToUnownedIsImmediatelyPerformed(t *testing.T) {
	r := newRig(t, nil)
	committed, performed := false, false
	r.c0.AcquireExclusive(3, false, func(old mem.Value) {
		committed = true
		r.c0.WriteLocal(3, 5)
	}, func() { performed = true })
	r.run(t)
	if !committed || !performed {
		t.Fatalf("committed=%v performed=%v", committed, performed)
	}
	if r.c0.State(3) != Exclusive {
		t.Errorf("state = %s, want E", r.c0.State(3))
	}
	if v, _ := r.c0.Snoop(3); v != 5 {
		t.Errorf("value = %d", v)
	}
}

func TestWriteToSharedCollectsInvAck(t *testing.T) {
	r := newRig(t, map[mem.Addr]mem.Value{1: 9})
	r.c1.AcquireShared(1, false, func(mem.Value) {})
	r.run(t)
	// c0 upgrades: c1 must be invalidated; commit happens before performed.
	var commitAt, performAt sim.Time
	r.c0.AcquireExclusive(1, false, func(old mem.Value) {
		if old != 9 {
			t.Errorf("old = %d", old)
		}
		commitAt = r.engine.Now()
		r.c0.WriteLocal(1, 10)
	}, func() { performAt = r.engine.Now() })
	r.run(t)
	if r.c1.State(1) != Invalid {
		t.Errorf("sharer state = %s, want I", r.c1.State(1))
	}
	if r.c1.Stats.Get("invalidations") != 1 {
		t.Errorf("invalidations = %d", r.c1.Stats.Get("invalidations"))
	}
	if !(commitAt > 0 && performAt > commitAt) {
		t.Errorf("commit=%d perform=%d: global performance must follow commit", commitAt, performAt)
	}
	if r.c0.Counter() != 0 {
		t.Errorf("counter = %d after performance", r.c0.Counter())
	}
}

func TestOwnershipTransferOnWrite(t *testing.T) {
	r := newRig(t, nil)
	r.c0.AcquireExclusive(4, false, func(mem.Value) { r.c0.WriteLocal(4, 1) }, nil)
	r.run(t)
	var old mem.Value = -1
	r.c1.AcquireExclusive(4, false, func(v mem.Value) {
		old = v
		r.c1.WriteLocal(4, 2)
	}, nil)
	r.run(t)
	if old != 1 {
		t.Fatalf("transferred value = %d, want 1", old)
	}
	if r.c0.State(4) != Invalid || r.c1.State(4) != Exclusive {
		t.Errorf("states: c0=%s c1=%s", r.c0.State(4), r.c1.State(4))
	}
	if r.dir.Owner(4) != 1 {
		t.Errorf("directory owner = %d, want 1", r.dir.Owner(4))
	}
}

func TestOwnerDowngradeOnRead(t *testing.T) {
	r := newRig(t, nil)
	r.c0.AcquireExclusive(5, false, func(mem.Value) { r.c0.WriteLocal(5, 77) }, nil)
	r.run(t)
	var got mem.Value
	r.c1.AcquireShared(5, false, func(v mem.Value) { got = v })
	r.run(t)
	if got != 77 {
		t.Fatalf("read-through-owner = %d", got)
	}
	if r.c0.State(5) != Shared || r.c1.State(5) != Shared {
		t.Errorf("states: c0=%s c1=%s, want S/S", r.c0.State(5), r.c1.State(5))
	}
	if v, ok := r.dir.MemValue(5); !ok || v != 77 {
		t.Errorf("directory value = %d,%v", v, ok)
	}
}

func TestReserveStallsRemoteSync(t *testing.T) {
	r := newRig(t, map[mem.Addr]mem.Value{1: 0, 2: 0})
	// c1 shares line 2 so c0's write to it needs an invalidation round.
	r.c1.AcquireShared(2, false, func(mem.Value) {})
	r.run(t)
	// c0: acquire the sync line 1 exclusively, then start a slow write to
	// line 2 and reserve line 1 while the write is outstanding.
	r.c0.AcquireExclusive(1, true, func(mem.Value) { r.c0.WriteLocal(1, 1) }, nil)
	r.run(t)
	r.c0.AcquireExclusive(2, false, func(mem.Value) { r.c0.WriteLocal(2, 9) }, nil)
	if r.c0.Counter() == 0 {
		t.Fatal("write should be outstanding")
	}
	r.c0.Reserve(1)
	if !r.c0.Reserved(1) {
		t.Fatal("reserve bit not set")
	}
	// c1's sync request for line 1 must not complete before c0's counter
	// reads zero — and when it does, the reserve bit must be clear.
	var syncDone sim.Time
	counterAtService := -1
	r.c1.AcquireExclusive(1, true, func(old mem.Value) {
		syncDone = r.engine.Now()
		counterAtService = r.c0.Counter()
		r.c1.WriteLocal(1, 2)
	}, nil)
	r.run(t)
	if syncDone == 0 {
		t.Fatal("remote sync never completed")
	}
	if counterAtService != 0 {
		t.Errorf("remote sync serviced while owner counter = %d", counterAtService)
	}
	if r.c0.Stats.Get("reserve_stalls") != 1 {
		t.Errorf("reserve_stalls = %d, want 1", r.c0.Stats.Get("reserve_stalls"))
	}
	if r.c0.Reserved(1) {
		t.Error("reserve bit should clear when the counter reads zero")
	}
}

func TestDataFwdNotStalledByReserve(t *testing.T) {
	r := newRig(t, map[mem.Addr]mem.Value{1: 0, 2: 0})
	r.c1.AcquireShared(2, false, func(mem.Value) {})
	r.run(t)
	r.c0.AcquireExclusive(1, true, func(mem.Value) { r.c0.WriteLocal(1, 1) }, nil)
	r.run(t)
	r.c0.AcquireExclusive(2, false, func(mem.Value) { r.c0.WriteLocal(2, 9) }, nil)
	r.c0.Reserve(1)
	// A *data* read of the reserved line is serviced immediately (only
	// synchronization requests stall on reserve bits).
	var got mem.Value = -1
	r.c1.AcquireShared(1, false, func(v mem.Value) { got = v })
	r.run(t)
	if got != 1 {
		t.Fatalf("data read of reserved line = %d, want 1", got)
	}
}

func TestOnCounterZeroImmediateWhenIdle(t *testing.T) {
	r := newRig(t, nil)
	called := false
	r.c0.OnCounterZero(func() { called = true })
	if !called {
		t.Fatal("idle cache should fire immediately")
	}
}

func TestBusyAndOnFree(t *testing.T) {
	r := newRig(t, nil)
	r.c0.AcquireExclusive(6, false, func(mem.Value) { r.c0.WriteLocal(6, 1) }, nil)
	if !r.c0.Busy(6) {
		t.Fatal("MSHR should be busy")
	}
	freed := false
	r.c0.OnFree(6, func() { freed = true })
	r.run(t)
	if !freed {
		t.Fatal("OnFree never fired")
	}
	ranNow := false
	r.c0.OnFree(6, func() { ranNow = true })
	if !ranNow {
		t.Fatal("OnFree on idle address should fire immediately")
	}
}

func TestWriteLocalRequiresExclusive(t *testing.T) {
	r := newRig(t, nil)
	r.c0.WriteLocal(9, 1)
	err := r.engine.Failed()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestLineStateStrings(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" {
		t.Error("state strings wrong")
	}
	if MsgGetS.String() != "GetS" || MsgWriteAck.String() != "WriteAck" {
		t.Error("message strings wrong")
	}
}
