package cache

import (
	"errors"
	"fmt"

	"weakorder/internal/interconnect"
	"weakorder/internal/sim"
)

// ErrProtocol is the sentinel all coherence-protocol errors wrap. A genuine
// protocol bug — a message the state machine cannot explain, a counter going
// negative, an operation on a line in the wrong state — surfaces as a
// *ProtocolError matching this sentinel instead of a panic, so a run that
// trips one becomes a failing test with a reproducer rather than a crash.
var ErrProtocol = errors.New("coherence protocol error")

// ErrRetryExhausted is the sentinel wrapped by protocol errors raised when a
// request's bounded retry budget runs out (the fabric kept dropping or
// NACKing it). It also matches ErrProtocol.
var ErrRetryExhausted = errors.New("request retry budget exhausted")

// ErrWatchdog is the sentinel wrapped by protocol errors raised by the
// directory's transaction watchdog: a line stayed busy longer than the
// timeout, meaning some message of the in-flight transaction was lost with
// no recovery path. It also matches ErrProtocol.
var ErrWatchdog = errors.New("directory transaction watchdog expired")

// ProtocolError describes one protocol violation: which node detected it, at
// what cycle, the offending message (when one triggered the detection), and
// a human-readable reason. It unwraps to ErrProtocol (and optionally a more
// specific sentinel) for errors.Is dispatch.
type ProtocolError struct {
	// Node is the endpoint that detected the violation (a cache ID or the
	// directory's node ID).
	Node interconnect.NodeID
	// Dir marks the detector as the directory rather than a cache.
	Dir bool
	// Cycle is the simulated time of detection.
	Cycle sim.Time
	// Msg is the offending message; meaningful only when HasMsg is set
	// (counter underflow, for example, has no triggering message).
	Msg    Msg
	HasMsg bool
	// From is the sender of the offending message (when HasMsg).
	From interconnect.NodeID
	// Reason is the human-readable description of the violation.
	Reason string
	// Kind is an optional more specific sentinel (ErrRetryExhausted,
	// ErrWatchdog); nil for plain protocol violations.
	Kind error
}

// Error implements error.
func (e *ProtocolError) Error() string {
	who := fmt.Sprintf("cache %d", e.Node)
	if e.Dir {
		who = "directory"
	}
	s := fmt.Sprintf("%s @%d: %s", who, e.Cycle, e.Reason)
	if e.HasMsg {
		s += fmt.Sprintf(" (message %s x%d value=%d seq=%d epoch=%d from node %d)",
			e.Msg.Kind, e.Msg.Addr, e.Msg.Value, e.Msg.Seq, e.Msg.Epoch, e.From)
	}
	return s
}

// Unwrap implements errors.Is chaining: every ProtocolError matches
// ErrProtocol, and additionally its specific Kind sentinel when set.
func (e *ProtocolError) Unwrap() []error {
	if e.Kind != nil {
		return []error{ErrProtocol, e.Kind}
	}
	return []error{ErrProtocol}
}
