package campaign

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that no reader — and no crash at
// any instant — can ever observe a partial file: the data goes to a
// same-directory temp file first (rename is only atomic within one
// filesystem), is synced to stable storage, and then renamed over path.
// Either the old content or the complete new content is visible, never a
// truncated in-between. The temp file is removed on any failure.
//
// Every report, reproducer and checkpoint write in the campaign CLIs goes
// through here: the pre-service wofuzz wrote files in place, so a kill
// mid-write left truncated .go/.litmus reproducers that looked valid.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	return nil
}

// WriteJSONAtomic marshals v with indentation and a trailing newline (the
// repository's report convention) and writes it atomically.
func WriteJSONAtomic(path string, v any) error {
	data, err := MarshalReport(v)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data, 0o644)
}

// MarshalReport is the one JSON rendering used for reports and checkpoints,
// so byte-identity comparisons compare a single canonical form.
func MarshalReport(v any) ([]byte, error) {
	data, err := jsonMarshalIndent(v)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding report: %w", err)
	}
	return append(data, '\n'), nil
}
