package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWriteFileAtomicNoPartialObservable hammers a path with rewrites while
// a reader polls it continuously: every read must see one of the complete
// payloads, never a prefix, a mix, or a truncation. This is the property the
// report/checkpoint/reproducer writers rely on — a kill mid-write leaves the
// old file, not a torn one.
func TestWriteFileAtomicNoPartialObservable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	// Two distinguishable full payloads, big enough that a non-atomic write
	// would be observably partial.
	a := bytes.Repeat([]byte("A"), 1<<16)
	b := bytes.Repeat([]byte("B"), 1<<16)
	if err := WriteFileAtomic(path, a, 0o644); err != nil {
		t.Fatal(err)
	}

	var stopFlag atomic.Bool
	var torn atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopFlag.Load() {
				data, err := os.ReadFile(path)
				if err != nil {
					continue // rename window on some filesystems; never torn
				}
				reads.Add(1)
				if !bytes.Equal(data, a) && !bytes.Equal(data, b) {
					torn.Add(1)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		payload := a
		if i%2 == 1 {
			payload = b
		}
		if err := WriteFileAtomic(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stopFlag.Store(true)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("observed %d torn read(s) out of %d", torn.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatalf("reader never observed the file; test proves nothing")
	}

	// No temp litter once the writes are done.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestWriteFileAtomicFailureLeavesTarget pins the failure path: when the
// write cannot complete (destination directory vanished), the original file
// is untouched and no temp file survives.
func TestWriteFileAtomicFailureLeavesTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.bin")
	if err := WriteFileAtomic(path, []byte("x"), 0o644); err == nil {
		t.Fatalf("write into a missing directory succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); !os.IsNotExist(err) {
		t.Fatalf("missing directory materialized: %v", err)
	}
}
