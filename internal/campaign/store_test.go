package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weakorder/internal/digest"
)

func testKey(b byte) digest.Sum {
	var k digest.Sum
	for i := range k {
		k[i] = b
	}
	return k
}

// TestStoreRoundtrip pins the basic contract: entries put before a close are
// all recovered by the next open, with last-write-wins for duplicate keys.
func TestStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.wocs")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(2), []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte(`{"a":99}`)); err != nil { // update
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Discarded != 0 {
		t.Fatalf("clean segment discarded %d bytes", s2.Discarded)
	}
	if s2.Len() != 2 {
		t.Fatalf("recovered %d entries, want 2", s2.Len())
	}
	if v, ok := s2.Get(testKey(1)); !ok || string(v) != `{"a":99}` {
		t.Fatalf("key 1 = %q, %v; want last write to win", v, ok)
	}
	if v, ok := s2.Get(testKey(2)); !ok || string(v) != `{"b":2}` {
		t.Fatalf("key 2 = %q, %v", v, ok)
	}
	st := s2.Stats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 2 hits 0 misses", st)
	}
}

// TestStoreCorruptTailTruncated pins crash recovery: damage confined to the
// tail — a torn final frame, or trailing garbage from a crash mid-append —
// costs only the damaged frame. Every intact frame before it survives, the
// damage is physically truncated (not trusted, not re-served), and the
// segment accepts new appends that survive the next open.
func TestStoreCorruptTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mangle func(data []byte) []byte
	}{
		{"torn final frame", func(data []byte) []byte { return data[:len(data)-3] }},
		{"flipped checksum byte", func(data []byte) []byte {
			data[len(data)-1] ^= 0xff
			return data
		}},
		{"trailing garbage", func(data []byte) []byte {
			return append(data, 0xde, 0xad, 0xbe, 0xef)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.wocs")
			s, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			for b := byte(1); b <= 3; b++ {
				if err := s.Put(testKey(b), bytes.Repeat([]byte{b}, 20)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			if s2.Discarded == 0 {
				t.Fatalf("damage went undetected")
			}
			// Entries before the damage survive; at most the tail frame is lost.
			if s2.Len() < 2 {
				t.Fatalf("recovered only %d entries, want at least 2", s2.Len())
			}
			if _, ok := s2.Get(testKey(1)); !ok {
				t.Fatalf("intact leading entry lost")
			}
			// The store still appends, and the repair is durable.
			if err := s2.Put(testKey(9), []byte("post-repair")); err != nil {
				t.Fatal(err)
			}
			want := s2.Len()
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.Discarded != 0 {
				t.Fatalf("repaired segment still discards %d bytes", s3.Discarded)
			}
			if s3.Len() != want {
				t.Fatalf("post-repair reopen: %d entries, want %d", s3.Len(), want)
			}
			if v, ok := s3.Get(testKey(9)); !ok || string(v) != "post-repair" {
				t.Fatalf("post-repair entry lost: %q, %v", v, ok)
			}
		})
	}
}

// TestStoreVersionBumpInvalidates pins the upgrade story: a segment written
// under a different format version is discarded wholesale — never misread as
// current-format frames — and the file is reinitialized for the new version.
func TestStoreVersionBumpInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.wocs")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("old-format")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = StoreVersion + 1 // a future (unknown) format version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("entries survived a version bump: %d", s2.Len())
	}
	if s2.Discarded != int64(len(data)) {
		t.Fatalf("Discarded = %d, want the whole %d-byte segment", s2.Discarded, len(data))
	}
	// The reinitialized segment is a valid current-version store.
	if err := s2.Put(testKey(2), []byte("new-format")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 1 || s3.Discarded != 0 {
		t.Fatalf("reinitialized segment: %d entries, %d discarded", s3.Len(), s3.Discarded)
	}
}

// TestStoreRefusesForeignFile pins the safety guard: a file that does not
// carry the cache magic is NEVER truncated or overwritten — pointing -cache
// at the wrong path must not destroy data.
func TestStoreRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	content := []byte("important file that is not a cache")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil || !strings.Contains(err.Error(), "not a result cache") {
		t.Fatalf("OpenStore on a foreign file: err = %v, want a bad-magic refusal", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatalf("foreign file was modified")
	}
}
