package campaign

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"weakorder/internal/fuzz"
	"weakorder/internal/litmus"
	"weakorder/internal/program"
)

// Server is the always-on campaign service: an HTTP/JSON front end over the
// Store and the Runner. It answers single-program submissions from the cache
// when it can, schedules campaign Specs in the background on the shared
// internal/par pool, streams per-seed progress as NDJSON, and — the always-on
// part — resumes every incomplete checkpointed campaign it finds in its
// directory at boot, so neither a server crash nor a restart loses work.
type Server struct {
	store *Store
	dir   string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	seq       int
	campaigns map[string]*campaignState
	order     []string
}

// campaignState tracks one background campaign.
type campaignState struct {
	id   string
	spec Spec

	mu     sync.Mutex
	cond   *sync.Cond
	events [][]byte // NDJSON lines, buffered for replay to late subscribers
	next   int      // seeds completed
	done   bool
	failed string // terminal error, "" on success/interrupt
	report *Report
	sum    Summary
}

// CampaignStatus is the JSON status of one campaign.
type CampaignStatus struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	Next  int    `json:"next"`
	Seeds int    `json:"seeds"`
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
	// Runtime counters (the report holds none of these).
	CacheHits int64   `json:"cache_hits"`
	Explored  int64   `json:"explored_states"`
	Report    *Report `json:"report,omitempty"`
}

// Event is one NDJSON progress line: a per-seed record while the campaign
// runs, then a final "done" (or "error") line.
type Event struct {
	Type   string `json:"type"` // "seed", "done", "error"
	ID     string `json:"id"`
	Index  int    `json:"index,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Name   string `json:"name,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// Seed outcome, mirroring the report entry's headline fields.
	DRF0      bool     `json:"drf0,omitempty"`
	Skipped   bool     `json:"skipped,omitempty"`
	Violating []string `json:"violating,omitempty"`
	Contained bool     `json:"contained,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// NewServer builds a service over store (may be nil for uncached operation)
// rooted at dir, which holds one checkpoint subdirectory per campaign.
func NewServer(store *Store, dir string) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:     store,
		dir:       dir,
		ctx:       ctx,
		cancel:    cancel,
		campaigns: make(map[string]*campaignState),
	}
}

// Recover scans the server directory for checkpointed campaigns and restarts
// every incomplete one in the background (completed ones are registered as
// done, their reports served from the checkpoint). It returns the ids it
// resumed. Call once, before serving.
func (s *Server) Recover() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var resumed []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		cp, err := LoadCheckpoint(filepath.Join(s.dir, id))
		if err != nil {
			continue // not a campaign directory (or unreadable); leave it alone
		}
		s.mu.Lock()
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "c")); err == nil && n >= s.seq {
			s.seq = n + 1 // new ids never collide with recovered ones
		}
		st := s.register(id, cp.Spec)
		s.mu.Unlock()
		st.next = cp.Next
		st.sum = Summary{CacheHits: cp.CacheHits, Explored: cp.Explored}
		if cp.Next >= cp.Spec.Seeds {
			st.report = cp.Report
			st.done = true
			continue
		}
		s.launch(st, true)
		resumed = append(resumed, id)
	}
	sort.Strings(resumed)
	return resumed, nil
}

// Shutdown interrupts every running campaign (each checkpoints before
// exiting) and waits for them to stop.
func (s *Server) Shutdown() {
	s.cancel()
	s.wg.Wait()
}

// register adds a campaign to the tables; the caller holds s.mu.
func (s *Server) register(id string, spec Spec) *campaignState {
	st := &campaignState{id: id, spec: spec}
	st.cond = sync.NewCond(&st.mu)
	s.campaigns[id] = st
	s.order = append(s.order, id)
	return st
}

// launch runs a campaign in the background.
func (s *Server) launch(st *campaignState, resume bool) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		r := &Runner{
			Spec:          st.spec,
			Store:         s.store,
			CheckpointDir: filepath.Join(s.dir, st.id),
			Resume:        resume,
			Progress: func(sr SeedReport, cached bool) {
				st.publish(Event{
					Type: "seed", ID: st.id, Index: sr.Index, Seed: sr.Seed,
					Name: sr.Name, Cached: cached, DRF0: sr.DRF0,
					Skipped: sr.Skipped, Violating: sr.Violating,
					Contained: sr.Contained,
				}, sr.Index+1)
			},
		}
		rep, sum, err := r.Run(s.ctx)
		st.mu.Lock()
		defer st.mu.Unlock()
		defer st.cond.Broadcast()
		switch {
		case err == nil:
			st.report = rep
			st.sum = *sum
			st.done = true
			st.appendEventLocked(Event{Type: "done", ID: st.id})
		case errors.Is(err, ErrInterrupted):
			// Shutdown path: checkpointed; a restart's Recover resumes it.
			// Not done, not failed — simply paused.
			st.sum = *sum
		default:
			st.failed = err.Error()
			st.done = true
			st.appendEventLocked(Event{Type: "error", ID: st.id, Error: err.Error()})
		}
	}()
}

// publish appends a progress event and advances the completed-seed count.
func (st *campaignState) publish(ev Event, next int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if next > st.next {
		st.next = next
	}
	st.appendEventLocked(ev)
}

func (st *campaignState) appendEventLocked(ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	st.events = append(st.events, append(line, '\n'))
	st.cond.Broadcast()
}

// status snapshots the campaign for the status endpoint.
func (st *campaignState) status(full bool) CampaignStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	cs := CampaignStatus{
		ID: st.id, Spec: st.spec, Next: st.next, Seeds: st.spec.Seeds,
		Done: st.done, Error: st.failed,
		CacheHits: st.sum.CacheHits, Explored: st.sum.Explored,
	}
	if full && st.done {
		cs.Report = st.report
	}
	return cs
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/check              check one litmus program (cache-answered)
//	POST /v1/campaigns          submit a campaign Spec; returns its id
//	GET  /v1/campaigns          list campaigns
//	GET  /v1/campaigns/{id}     one campaign's status (+report when done)
//	GET  /v1/campaigns/{id}/events   NDJSON progress stream (replay + live)
//	GET  /v1/stats              cache counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// CheckRequest submits one program for a differential check. The program is
// litmus text (the repository's corpus format).
type CheckRequest struct {
	Litmus    string `json:"litmus"`
	Machines  string `json:"machines,omitempty"`   // CSV, default "weak"
	MaxStates int    `json:"max_states,omitempty"` // 0 = fuzzing default
	Minimize  bool   `json:"minimize,omitempty"`
}

// CheckResponse is the verdict. Cached reports whether it was answered from
// the result cache; ExploredNow counts the distinct states explored BY THIS
// REQUEST — zero on a cache hit, which is how a client (and the CI smoke
// test) verifies no re-exploration happened. States is the exploration the
// verdict originally cost, whenever it was first computed.
type CheckResponse struct {
	Name        string            `json:"name"`
	Key         string            `json:"key"`
	Cached      bool              `json:"cached"`
	ExploredNow int64             `json:"explored_now"`
	States      int64             `json:"states"`
	DRF0        bool              `json:"drf0"`
	Skipped     bool              `json:"skipped,omitempty"`
	SCOutcomes  int               `json:"sc_outcomes,omitempty"`
	RacyNonSC   bool              `json:"racy_non_sc,omitempty"`
	Violating   []string          `json:"violating,omitempty"`
	Reproducers map[string]string `json:"reproducers,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, req *http.Request) {
	var cr CheckRequest
	if err := decodeJSON(req.Body, &cr); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(cr.Litmus) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty litmus program"))
		return
	}
	res, err := program.Parse(cr.Litmus)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parsing litmus program: %w", err))
		return
	}
	p := res.Program
	machines := cr.Machines
	if machines == "" {
		machines = "weak"
	}
	factories, err := litmus.FactoriesByNames(machines)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	xt := *fuzz.DefaultExplorer()
	if cr.MaxStates > 0 {
		xt.MaxStates = cr.MaxStates
	}
	xt.Workers = -1 // auto-size each exploration from the shared par budget
	names := make([]string, len(factories))
	for i, f := range factories {
		names[i] = f.Name
	}
	opts := Options{Machines: names, MaxStates: xt.MaxStates, MaxTraceOps: xt.MaxTraceOps}
	v, cached, err := FuzzVerdict(s.store, p, factories, xt, opts, cr.Minimize)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	key := Key(p, opts)
	resp := CheckResponse{
		Name: p.Name, Key: hex.EncodeToString(key[:]), Cached: cached,
		States: v.States, DRF0: v.DRF0, Skipped: v.Skipped,
		SCOutcomes: v.SCOutcomes, RacyNonSC: v.RacyNonSC,
		Violating: v.Violating, Reproducers: v.Reproducers,
	}
	if !cached {
		resp.ExploredNow = v.States
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	if err := decodeJSON(req.Body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := fmt.Sprintf("c%d", s.seq)
	s.seq++
	st := s.register(id, spec)
	s.mu.Unlock()
	s.launch(st, false)
	writeJSON(w, http.StatusAccepted, st.status(false))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id].status(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(req *http.Request) (*campaignState, bool) {
	s.mu.Lock()
	st, ok := s.campaigns[req.PathValue("id")]
	s.mu.Unlock()
	return st, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	st, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such campaign"))
		return
	}
	writeJSON(w, http.StatusOK, st.status(true))
}

// handleEvents streams the campaign's progress as NDJSON: first every
// buffered event (so a late subscriber sees the full history), then live
// events as seeds complete, ending after the terminal "done"/"error" line.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	st, ok := s.lookup(req)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such campaign"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Wake the streaming loop when the client goes away: the request
	// context's cancellation broadcasts on the same cond the events use.
	ctx := req.Context()
	stop := context.AfterFunc(ctx, func() {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	defer stop()

	sent := 0
	for {
		st.mu.Lock()
		for sent == len(st.events) && !st.done && ctx.Err() == nil {
			st.cond.Wait()
		}
		batch := st.events[sent:]
		sent = len(st.events)
		done := st.done
		st.mu.Unlock()
		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ctx.Err() != nil || (done && len(batch) == 0) {
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusOK, StoreStats{})
		return
	}
	writeJSON(w, http.StatusOK, s.store.Stats())
}

// decodeJSON strictly decodes one JSON value from r.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
