package campaign

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"weakorder/internal/digest"
)

// StoreVersion is the on-disk cache format version. It bumps whenever the
// segment layout OR the key derivation (KeyVersion) OR the Verdict encoding
// changes: a version byte the reader does not expect means the whole segment
// is discarded and rewritten fresh, never misread. (A stale verdict served
// under a new key scheme would silently corrupt campaign reports; an
// invalidated cache merely re-explores.)
const StoreVersion = 1

// storeMagic identifies a campaign result-cache segment.
var storeMagic = [4]byte{'W', 'O', 'C', 'S'}

// maxValueLen bounds one cached verdict's encoded size. Minimized
// reproducers are small by construction; anything past this is structural
// damage.
const maxValueLen = 1 << 24

// errCorrupt marks a damaged frame during recovery scan. It is internal:
// corruption on open is repaired (tail truncation), not surfaced.
var errCorrupt = errors.New("campaign: corrupt cache frame")

// Store is the digest-keyed result cache: an in-memory map recovered from —
// and persisted to — an append-only log segment.
//
// Segment layout (conventions shared with internal/workload/tracefmt):
//
//	magic "WOCS" | version byte | frame*
//
// Every frame is a uvarint payload length, the payload, and an 8-byte
// big-endian FNV-1a checksum of the payload. A frame's payload is the
// 16-byte cache key followed by the JSON-encoded Verdict. Appends are
// single-write, so a crash can only damage the tail; Open scans forward,
// keeps every intact frame, and truncates the file at the first damaged or
// truncated one — a corrupt tail is cut off, never trusted. Duplicate keys
// keep the last frame (append-only updates).
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[digest.Sum][]byte

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	// Recovered/Discarded describe what Open found: intact frames kept, and
	// trailing bytes truncated (0 for a clean segment). A version mismatch
	// discards the whole segment and reports its size here.
	Recovered int
	Discarded int64
}

// OpenStore opens (or creates) the cache segment at path and recovers every
// intact entry. A segment with an unknown version byte is invalidated: its
// contents are discarded and a fresh header is written.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, entries: make(map[digest.Sum][]byte)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the segment, loading intact frames and truncating damage.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return s.writeHeader()
	}
	var hdr [5]byte
	if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
		// Shorter than a header: not a usable segment; start fresh.
		s.Discarded = size
		return s.reset()
	}
	if [4]byte(hdr[:4]) != storeMagic {
		// Refuse to clobber a file that was never ours.
		return fmt.Errorf("campaign: %s is not a result cache (bad magic %q)", s.path, hdr[:4])
	}
	if hdr[4] != StoreVersion {
		// A version bump invalidates old segments instead of misreading
		// them: the key derivation or verdict encoding changed underneath.
		s.Discarded = size
		return s.reset()
	}
	good := int64(len(hdr))
	r := &offsetReader{f: s.f, off: good}
	for {
		key, val, next, err := readStoreFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Damaged or truncated tail: cut it off at the last good frame.
			s.Discarded = size - good
			if err := s.f.Truncate(good); err != nil {
				return err
			}
			break
		}
		s.entries[key] = val
		s.Recovered++
		good = next
	}
	_, err = s.f.Seek(good, io.SeekStart)
	return err
}

// reset truncates the segment and writes a fresh header.
func (s *Store) reset() error {
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return s.writeHeader()
}

func (s *Store) writeHeader() error {
	var hdr [5]byte
	copy(hdr[:], storeMagic[:])
	hdr[4] = StoreVersion
	_, err := s.f.Write(hdr[:])
	return err
}

// offsetReader reads from an *os.File tracking the absolute offset, so the
// recovery scan knows where the last intact frame ended.
type offsetReader struct {
	f   *os.File
	off int64
	// partial counts bytes consumed by the varint currently being read, so
	// EOF exactly at a frame boundary is distinguishable from EOF mid-frame.
	partial int
}

func (r *offsetReader) ReadByte() (byte, error) {
	var b [1]byte
	n, err := r.f.Read(b[:])
	if n == 1 {
		r.off++
		return b[0], nil
	}
	if err == nil {
		err = io.EOF
	}
	return 0, err
}

func (r *offsetReader) ReadFull(p []byte) error {
	n, err := io.ReadFull(r.f, p)
	r.off += int64(n)
	return err
}

// readStoreFrame reads one frame, returning the key, the value, and the
// offset just past the frame. io.EOF at a frame boundary is a clean end;
// any other failure is damage.
func readStoreFrame(r *offsetReader) (digest.Sum, []byte, int64, error) {
	var key digest.Sum
	n, err := readUvarint(r)
	if err != nil {
		if err == io.EOF && r.lenZero() {
			return key, nil, 0, io.EOF
		}
		return key, nil, 0, errCorrupt
	}
	if n < digest.Size || n > digest.Size+maxValueLen {
		return key, nil, 0, errCorrupt
	}
	payload := make([]byte, n)
	if err := r.ReadFull(payload); err != nil {
		return key, nil, 0, errCorrupt
	}
	var sum [8]byte
	if err := r.ReadFull(sum[:]); err != nil {
		return key, nil, 0, errCorrupt
	}
	if binary.BigEndian.Uint64(sum[:]) != fnv1a(payload) {
		return key, nil, 0, errCorrupt
	}
	copy(key[:], payload[:digest.Size])
	return key, payload[digest.Size:], r.off, nil
}

// lenZero reports whether the last varint read consumed no bytes (clean EOF
// at a frame boundary rather than mid-varint).
func (r *offsetReader) lenZero() bool { return r.partial == 0 }

// readUvarint reads a uvarint, tracking partial consumption for clean-EOF
// detection.
func readUvarint(r *offsetReader) (uint64, error) {
	var x uint64
	var shift uint
	r.partial = 0
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		r.partial++
		if b < 0x80 {
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, errCorrupt
}

// Get returns the cached value for key.
func (s *Store) Get(key digest.Sum) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.entries[key]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Put stores value under key, appending one frame to the segment. The frame
// is assembled in memory and appended with a single write, so a crash
// mid-append damages at most the tail frame — which the next Open truncates.
func (s *Store) Put(key digest.Sum, value []byte) error {
	if len(value) > maxValueLen {
		return fmt.Errorf("campaign: cache value %d bytes exceeds %d", len(value), maxValueLen)
	}
	frame := make([]byte, 0, binary.MaxVarintLen64+digest.Size+len(value)+8)
	frame = binary.AppendUvarint(frame, uint64(digest.Size+len(value)))
	frame = append(frame, key[:]...)
	frame = append(frame, value...)
	payload := frame[len(frame)-digest.Size-len(value):]
	frame = binary.BigEndian.AppendUint64(frame, fnv1a(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("campaign: store is closed")
	}
	if _, err := s.f.Write(frame); err != nil {
		return err
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	s.entries[key] = cp
	s.puts.Add(1)
	return nil
}

// Len returns the number of distinct cached keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Path returns the segment path.
func (s *Store) Path() string { return s.path }

// StoreStats is the cache's runtime account.
type StoreStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
}

// Stats returns hit/miss/put counters since open.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Entries: s.Len(),
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
	}
}

// Close syncs and closes the segment. The Store is unusable after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// fnv1a is the FNV-1a 64-bit hash (tracefmt's checksum parameters).
func fnv1a(p []byte) uint64 {
	sum := uint64(0xcbf29ce484222325)
	for _, b := range p {
		sum ^= uint64(b)
		sum *= 0x100000001b3
	}
	return sum
}
