package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// runToCompletion runs a spec uninterrupted and returns its report bytes.
func runToCompletion(t *testing.T, spec Spec, workers int) []byte {
	t.Helper()
	r := &Runner{Spec: spec, Workers: workers}
	rep, _, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResumeByteEquivalence is the acceptance property of the checkpoint
// system: a campaign killed at several different seed offsets and resumed —
// possibly repeatedly, and at different pool widths — produces a final JSON
// report byte-identical to an uninterrupted run's.
func TestResumeByteEquivalence(t *testing.T) {
	spec := Spec{Seeds: 9, BaseSeed: 1, Machines: "tso"}
	want := runToCompletion(t, spec, 1)
	if other := runToCompletion(t, spec, runtime.GOMAXPROCS(0)); string(other) != string(want) {
		t.Fatalf("pool width changed the uninterrupted report")
	}

	for _, stopAfter := range []int{1, 4, 8} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			t.Run(fmt.Sprintf("stop=%d/workers=%d", stopAfter, workers), func(t *testing.T) {
				dir := t.TempDir()
				// Leg 1: killed after stopAfter seeds.
				r1 := &Runner{Spec: spec, CheckpointDir: dir, CheckpointEvery: 2,
					StopAfter: stopAfter, Workers: workers}
				rep, _, err := r1.Run(context.Background())
				if !errors.Is(err, ErrInterrupted) {
					t.Fatalf("err = %v, want ErrInterrupted", err)
				}
				if len(rep.Programs) != stopAfter {
					t.Fatalf("partial report has %d programs, want %d", len(rep.Programs), stopAfter)
				}
				// The partial report is internally consistent.
				if rep.Checked+rep.Skipped != len(rep.Programs) {
					t.Fatalf("partial report inconsistent: checked %d + skipped %d != %d programs",
						rep.Checked, rep.Skipped, len(rep.Programs))
				}
				// Leg 2: resume to completion.
				r2 := &Runner{Spec: spec, CheckpointDir: dir, Resume: true,
					CheckpointEvery: 2, Workers: workers}
				final, _, err := r2.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				got, err := MarshalReport(final)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("resumed report != uninterrupted report\nresumed:\n%s\nuninterrupted:\n%s", got, want)
				}
			})
		}
	}
}

// TestChaosResumeByteEquivalence pins the same property for the chaos
// campaign mode, whose verdicts additionally depend on the fault schedule.
func TestChaosResumeByteEquivalence(t *testing.T) {
	spec := Spec{Mode: ModeChaos, Seeds: 6, BaseSeed: 1, FaultSeed: 3}
	want := runToCompletion(t, spec, 1)

	dir := t.TempDir()
	r1 := &Runner{Spec: spec, CheckpointDir: dir, CheckpointEvery: 2, StopAfter: 3}
	if _, _, err := r1.Run(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	r2 := &Runner{Spec: spec, CheckpointDir: dir, Resume: true, CheckpointEvery: 2}
	final, _, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := MarshalReport(final)
	if string(got) != string(want) {
		t.Fatalf("resumed chaos report != uninterrupted report\nresumed:\n%s\nuninterrupted:\n%s", got, want)
	}
	if final.Faults == 0 {
		t.Fatalf("chaos campaign injected no faults; the schedule is not exercising anything")
	}
}

// TestCacheAnswersSecondCampaign pins the cache round trip at the Runner
// level: a second identical campaign sharing the store is fully answered
// from it (zero exploration), with a byte-identical report — and a campaign
// under a different spec shares nothing.
func TestCacheAnswersSecondCampaign(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "cache.wocs"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	spec := Spec{Seeds: 6, BaseSeed: 1, Machines: "tso"}
	first := &Runner{Spec: spec, Store: store}
	rep1, sum1, err := first.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum1.CacheHits != 0 || sum1.Explored == 0 {
		t.Fatalf("first run: hits=%d explored=%d, want 0 hits and some exploration", sum1.CacheHits, sum1.Explored)
	}
	second := &Runner{Spec: spec, Store: store}
	rep2, sum2, err := second.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int(sum2.CacheHits) != spec.Seeds || sum2.Explored != 0 {
		t.Fatalf("second run: hits=%d explored=%d, want %d hits and zero exploration",
			sum2.CacheHits, sum2.Explored, spec.Seeds)
	}
	a, _ := MarshalReport(rep1)
	b, _ := MarshalReport(rep2)
	if string(a) != string(b) {
		t.Fatalf("cache-answered report diverged from computed report")
	}

	// A different base seed shares no entries.
	other := &Runner{Spec: Spec{Seeds: 3, BaseSeed: 100, Machines: "tso"}, Store: store}
	if _, sum3, err := other.Run(context.Background()); err != nil {
		t.Fatal(err)
	} else if sum3.CacheHits != 0 {
		t.Fatalf("different campaign hit the cache %d times", sum3.CacheHits)
	}
}

// TestCheckpointGuards pins the two refusal paths: a fresh campaign must not
// clobber an existing checkpoint, and a resume must not continue under a
// different spec.
func TestCheckpointGuards(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seeds: 4, BaseSeed: 1, Machines: "tso"}
	r := &Runner{Spec: spec, CheckpointDir: dir, CheckpointEvery: 2, StopAfter: 2}
	if _, _, err := r.Run(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	fresh := &Runner{Spec: spec, CheckpointDir: dir}
	if _, _, err := fresh.Run(context.Background()); err == nil {
		t.Fatalf("fresh campaign silently overwrote an existing checkpoint")
	}

	changed := spec
	changed.Seeds = 8
	mismatch := &Runner{Spec: changed, CheckpointDir: dir, Resume: true}
	if _, _, err := mismatch.Run(context.Background()); err == nil {
		t.Fatalf("resume accepted a different spec")
	}

	empty := &Runner{Spec: spec, CheckpointDir: t.TempDir(), Resume: true}
	if _, _, err := empty.Run(context.Background()); err == nil {
		t.Fatalf("resume without a checkpoint succeeded")
	}
}

// TestCheckpointDirStaysClean pins that checkpoint writes are atomic: after
// many snapshot rewrites the directory holds exactly one complete, parseable
// checkpoint — no *.tmp* leftovers accumulate.
func TestCheckpointDirStaysClean(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seeds: 6, BaseSeed: 1, Machines: "tso"}
	r := &Runner{Spec: spec, CheckpointDir: dir, CheckpointEvery: 1, StopAfter: 5}
	if _, _, err := r.Run(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != CheckpointFile {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("checkpoint dir holds %v, want exactly [%s]", names, CheckpointFile)
	}
	cp, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Next != 5 {
		t.Fatalf("checkpoint next = %d, want 5", cp.Next)
	}
}

// TestMinimizedReproducersDeterministicAcrossResume runs the known-broken
// fixtures with minimization on: the campaign finds violations, and the
// reproducer files an interrupted+resumed campaign writes are byte-identical
// to an uninterrupted campaign's.
func TestMinimizedReproducersDeterministicAcrossResume(t *testing.T) {
	// Seeds chosen to include i%7==6 (the guarded-mp shape that trips the
	// reserve-bit ablation) so at least one violation minimizes.
	spec := Spec{Seeds: 7, BaseSeed: 1, Machines: "broken", Minimize: true}

	outA := t.TempDir()
	a := &Runner{Spec: spec, Out: outA}
	repA, _, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if repA.Violations == 0 {
		t.Fatalf("broken machines produced no violations; reproducer path untested")
	}

	outB := t.TempDir()
	dir := t.TempDir()
	b1 := &Runner{Spec: spec, Out: outB, CheckpointDir: dir, CheckpointEvery: 2, StopAfter: 5}
	if _, _, err := b1.Run(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	b2 := &Runner{Spec: spec, Out: outB, CheckpointDir: dir, Resume: true, CheckpointEvery: 2}
	repB, _, err := b2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ra, _ := MarshalReport(repA)
	rb, _ := MarshalReport(repB)
	if string(ra) != string(rb) {
		t.Fatalf("resumed report != uninterrupted report with minimization on")
	}
	filesA, err := os.ReadDir(outA)
	if err != nil {
		t.Fatal(err)
	}
	if len(filesA) == 0 {
		t.Fatalf("no reproducer files written")
	}
	for _, f := range filesA {
		wantData, err := os.ReadFile(filepath.Join(outA, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gotData, err := os.ReadFile(filepath.Join(outB, f.Name()))
		if err != nil {
			t.Fatalf("resumed campaign missing reproducer %s: %v", f.Name(), err)
		}
		if string(gotData) != string(wantData) {
			t.Fatalf("reproducer %s differs across resume", f.Name())
		}
	}
}
