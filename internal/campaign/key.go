package campaign

import (
	"encoding/binary"
	"math"
	"sort"

	"weakorder/internal/digest"
	"weakorder/internal/faults"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// KeyVersion names the cache-key derivation. Any change to the program
// encoding, the option encoding, or the meaning of a Verdict bumps it; the
// version byte leads the hashed bytes, so old and new keys can never collide
// — and the Store's header version (StoreVersion) bumps with it, so old
// segments are invalidated wholesale rather than misread.
const KeyVersion = 1

// Options are the verdict-affecting knobs of one exploration — exactly the
// set that goes into the cache key alongside the program.
//
// In by necessity: the machine set (different machines, different verdicts),
// the state budget (a budget change can turn a verdict into a skip and back),
// the trace bound (changes which executions are enumerated), and the chaos
// fault schedule (seed and rates pick the injected faults).
//
// Out by proof: POR on/off and the exploration worker width. Both are pinned
// outcome-identical by the differential gates in CI (TestPOREquivalence,
// TestExploreWorkerWidthDeterminism), so keying on them would only split the
// cache and re-explore work the determinism guarantees already paid for.
// The key_test.go sensitivity matrix enforces both directions.
type Options struct {
	// Machines lists the machine names under test, in campaign order (order
	// is keyed: it fixes the order of Violating lists in verdicts).
	Machines []string
	// MaxStates is the effective per-exploration state budget (after
	// defaulting — callers pass the resolved value, never 0-meaning-default).
	MaxStates int
	// MaxTraceOps is the effective trace bound.
	MaxTraceOps int
	// Chaos marks a timed-machine fault-injection verdict.
	Chaos bool
	// FaultSeed/FaultRates are the chaos fault schedule (zero otherwise).
	FaultSeed  int64
	FaultRates faults.Rates
}

// Key derives the canonical cache key of (program, options): the fixed-seed
// 128-bit murmur3 digest (internal/digest) of a canonical binary encoding.
// The program's name is deliberately excluded — it cannot change an outcome,
// and excluding it lets structurally identical submissions dedup across
// campaigns that label programs differently.
func Key(p *program.Program, o Options) digest.Sum {
	b := make([]byte, 0, 256)
	b = append(b, KeyVersion)
	b = appendProgram(b, p)
	b = append(b, 'M')
	b = binary.AppendUvarint(b, uint64(len(o.Machines)))
	for _, m := range o.Machines {
		b = binary.AppendUvarint(b, uint64(len(m)))
		b = append(b, m...)
	}
	b = append(b, 'O')
	b = binary.AppendUvarint(b, uint64(o.MaxStates))
	b = binary.AppendUvarint(b, uint64(o.MaxTraceOps))
	if o.Chaos {
		b = append(b, 'C')
		b = appendZigzag(b, o.FaultSeed)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(o.FaultRates.Drop))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(o.FaultRates.Dup))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(o.FaultRates.Delay))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(o.FaultRates.Reorder))
		b = binary.AppendUvarint(b, uint64(o.FaultRates.MaxDelay))
	}
	return digest.Sum128(b)
}

// appendProgram appends a canonical, prefix-free binary encoding of the
// program: thread count, each thread's instruction stream field by field,
// then the initial-memory table in ascending address order. Two programs
// encode identically iff they are structurally identical (name aside), which
// is exactly the equivalence the cache needs — the machines see structure,
// never names.
func appendProgram(b []byte, p *program.Program) []byte {
	b = append(b, 'P')
	b = binary.AppendUvarint(b, uint64(len(p.Threads)))
	for _, code := range p.Threads {
		b = binary.AppendUvarint(b, uint64(len(code)))
		for _, in := range code {
			b = append(b, byte(in.Op), byte(in.Rd), byte(in.Ra))
			if in.Src.IsReg {
				b = append(b, 1, byte(in.Src.Reg))
			} else {
				b = append(b, 0)
				b = appendZigzag(b, int64(in.Src.Imm))
			}
			b = binary.AppendUvarint(b, uint64(in.Addr))
			if in.UseAddrReg {
				b = append(b, 1, byte(in.AddrReg))
			} else {
				b = append(b, 0)
			}
			b = append(b, byte(in.RMW))
			b = binary.AppendUvarint(b, uint64(in.Target))
			b = appendZigzag(b, int64(in.Delay))
		}
	}
	b = append(b, 'I')
	b = binary.AppendUvarint(b, uint64(len(p.Init)))
	addrs := make([]mem.Addr, 0, len(p.Init))
	for a := range p.Init {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		b = binary.AppendUvarint(b, uint64(a))
		b = appendZigzag(b, int64(p.Init[a]))
	}
	return b
}

// appendZigzag appends a zigzag-varint encoding of v (the tracefmt signed
// convention).
func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}
