package campaign

import (
	"context"
	"testing"

	"weakorder/internal/faults"
)

// baseOpts is the reference option set the sensitivity matrix perturbs.
func baseOpts() Options {
	return Options{Machines: []string{"tso", "pso"}, MaxStates: 400_000, MaxTraceOps: 40}
}

// TestKeySensitivityMatrix pins exactly what the cache key depends on.
// In the key: the program's structure, the machine list (including order),
// the state and trace budgets, and the chaos fault schedule. NOT in the key:
// the program's name — structurally identical programs must dedup across
// campaigns that label them differently. (POR and exploration width are kept
// out at the type level: Options has no field for them; TestPORAndWidthNotKeyed
// pins the end-to-end consequence.)
func TestKeySensitivityMatrix(t *testing.T) {
	_, p := ProgramFor(1, 0)
	base := Key(p, baseOpts())

	// Determinism: the same inputs rederive the same key.
	if again := Key(p, baseOpts()); again != base {
		t.Fatalf("key is not deterministic: %x vs %x", base, again)
	}
	// Regenerating the identical program gives the identical key.
	_, p2 := ProgramFor(1, 0)
	if k := Key(p2, baseOpts()); k != base {
		t.Fatalf("regenerated program changed the key: %x vs %x", base, k)
	}
	// The program's NAME is not keyed.
	renamed := *p
	renamed.Name = "something-else"
	if k := Key(&renamed, baseOpts()); k != base {
		t.Fatalf("program name is in the key: %x vs %x", base, k)
	}
	// A different program is keyed differently.
	_, q := ProgramFor(1, 1)
	if k := Key(q, baseOpts()); k == base {
		t.Fatalf("different programs share a key")
	}

	perturb := map[string]func(*Options){
		"machine set":    func(o *Options) { o.Machines = []string{"tso"} },
		"machine order":  func(o *Options) { o.Machines = []string{"pso", "tso"} },
		"machine rename": func(o *Options) { o.Machines = []string{"tso", "rmo"} },
		"max states":     func(o *Options) { o.MaxStates = 100_000 },
		"max trace ops":  func(o *Options) { o.MaxTraceOps = 39 },
		"chaos flag":     func(o *Options) { o.Chaos = true },
	}
	for what, mutate := range perturb {
		o := baseOpts()
		mutate(&o)
		if k := Key(p, o); k == base {
			t.Errorf("%s is NOT in the key but must be", what)
		}
	}

	// Chaos schedule: seed and every rate field are keyed.
	chaosBase := baseOpts()
	chaosBase.Chaos = true
	chaosBase.FaultSeed = 7
	chaosBase.FaultRates = faults.DefaultRates()
	ck := Key(p, chaosBase)
	chaosPerturb := map[string]func(*Options){
		"fault seed":    func(o *Options) { o.FaultSeed = 8 },
		"drop rate":     func(o *Options) { o.FaultRates.Drop += 0.01 },
		"dup rate":      func(o *Options) { o.FaultRates.Dup += 0.01 },
		"delay rate":    func(o *Options) { o.FaultRates.Delay += 0.01 },
		"reorder rate":  func(o *Options) { o.FaultRates.Reorder += 0.01 },
		"max delay":     func(o *Options) { o.FaultRates.MaxDelay++ },
	}
	for what, mutate := range chaosPerturb {
		o := chaosBase
		mutate(&o)
		if k := Key(p, o); k == ck {
			t.Errorf("chaos %s is NOT in the key but must be", what)
		}
	}
}

// TestPORAndWidthNotKeyed pins the negative half of the key contract end to
// end: a campaign re-run with POR disabled and a different exploration width
// — both proved outcome-identical by the differential gates — must be fully
// answered from a cache populated by the default configuration.
func TestPORAndWidthNotKeyed(t *testing.T) {
	store, err := OpenStore(t.TempDir() + "/cache.wocs")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	spec := Spec{Seeds: 6, BaseSeed: 1, Machines: "tso"}
	warm := &Runner{Spec: spec, Store: store}
	warmRep, warmSum, err := warm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warmSum.CacheHits != 0 {
		t.Fatalf("warm-up run had %d cache hits, want 0", warmSum.CacheHits)
	}

	cold := spec
	cold.POROff = true
	cold.ExploreWorkers = 2
	second := &Runner{Spec: cold, Store: store}
	rep, sum, err := second.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int(sum.CacheHits) != spec.Seeds {
		t.Fatalf("POR/width change split the cache: %d/%d hits", sum.CacheHits, spec.Seeds)
	}
	if sum.Explored != 0 {
		t.Fatalf("cache-hit run explored %d states, want 0", sum.Explored)
	}
	a, _ := MarshalReport(warmRep)
	b, _ := MarshalReport(rep)
	if string(a) != string(b) {
		t.Fatalf("cached report diverged from computed report:\n%s\nvs\n%s", a, b)
	}
}
