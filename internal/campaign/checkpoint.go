package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// CheckpointVersion names the checkpoint schema; a reader rejects versions
// it does not know rather than resuming from a misread snapshot.
const CheckpointVersion = 1

// CheckpointFile is the snapshot's name inside a campaign directory.
const CheckpointFile = "checkpoint.json"

// Checkpoint is a campaign's resumable state: the Spec it runs under, the
// next seed index to execute, and the partial report accumulated so far.
// Snapshots are written atomically (temp + rename), so a kill at any instant
// leaves either the previous checkpoint or the new one — never a torn file.
// Because per-seed verdicts are pure functions of the Spec, resuming from
// any checkpoint reproduces the same final report byte for byte.
type Checkpoint struct {
	Version int   `json:"version"`
	Spec    Spec  `json:"spec"`
	Next    int   `json:"next"`
	Report  *Report `json:"report"`
	// Summary carries the runtime counters across the interruption so the
	// final CLI summary accounts for the whole campaign, not just the last
	// resume leg. Not part of the report.
	CacheHits int64 `json:"cache_hits,omitempty"`
	Explored  int64 `json:"explored_states,omitempty"`
}

// WriteCheckpoint atomically snapshots c into dir (created if missing).
func WriteCheckpoint(dir string, c *Checkpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return WriteJSONAtomic(filepath.Join(dir, CheckpointFile), c)
}

// LoadCheckpoint reads the snapshot in dir. It returns os.ErrNotExist
// (matchable with errors.Is) when no checkpoint has been written yet.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("campaign: corrupt checkpoint in %s: %w", dir, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint version %d in %s unsupported (want %d)", c.Version, dir, CheckpointVersion)
	}
	if c.Report == nil {
		return nil, fmt.Errorf("campaign: checkpoint in %s has no report", dir)
	}
	if c.Next < 0 || c.Next > c.Spec.Seeds || c.Next < len(c.Report.Programs) {
		return nil, fmt.Errorf("campaign: checkpoint in %s is inconsistent (next %d, %d programs, %d seeds)",
			dir, c.Next, len(c.Report.Programs), c.Spec.Seeds)
	}
	return &c, nil
}

// SameSpec reports whether two specs are identical, compared on their
// canonical JSON form so defaulted and explicit zero values agree.
func SameSpec(a, b Spec) bool {
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && bytes.Equal(ja, jb)
}

// ErrInterrupted reports that a Run stopped before completing every seed —
// a context cancellation (signal), a StopAfter test hook, or a wall-clock
// budget — after checkpointing. The partial report it returns alongside is
// valid and internally consistent; resuming completes it.
var ErrInterrupted = errors.New("campaign: interrupted")

// jsonMarshalIndent is the one indentation used for reports/checkpoints.
func jsonMarshalIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
