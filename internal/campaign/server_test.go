package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"weakorder/internal/fuzz"
)

func newTestService(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := OpenStore(filepath.Join(t.TempDir(), "cache.wocs"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := NewServer(store, t.TempDir())
	t.Cleanup(srv.Shutdown)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestCheckEndpointCacheHit is the service's acceptance property: submitting
// the same litmus program twice answers the second request from the cache,
// proved by the exploration counters — explored_now is positive on the first
// response and zero on the second, with identical verdicts.
func TestCheckEndpointCacheHit(t *testing.T) {
	_, hs := newTestService(t)

	_, p := ProgramFor(1, 0)
	req := CheckRequest{Litmus: fuzz.EmitLitmus(p), Machines: "tso,pso"}

	var first CheckResponse
	if code := postJSON(t, hs.URL+"/v1/check", req, &first); code != http.StatusOK {
		t.Fatalf("first check: status %d", code)
	}
	if first.Cached {
		t.Fatalf("first submission reported cached")
	}
	if first.ExploredNow == 0 || first.States == 0 {
		t.Fatalf("first submission explored nothing: %+v", first)
	}

	var second CheckResponse
	if code := postJSON(t, hs.URL+"/v1/check", req, &second); code != http.StatusOK {
		t.Fatalf("second check: status %d", code)
	}
	if !second.Cached {
		t.Fatalf("identical resubmission was not answered from the cache")
	}
	if second.ExploredNow != 0 {
		t.Fatalf("cache hit explored %d states, want 0", second.ExploredNow)
	}
	if second.States != first.States || second.Key != first.Key ||
		second.DRF0 != first.DRF0 || second.SCOutcomes != first.SCOutcomes {
		t.Fatalf("cached verdict diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	// The program's NAME is not part of the identity: a renamed but
	// structurally identical submission still hits.
	renamed := *p
	renamed.Name = "renamed-program"
	var third CheckResponse
	if code := postJSON(t, hs.URL+"/v1/check", CheckRequest{Litmus: fuzz.EmitLitmus(&renamed), Machines: "tso,pso"}, &third); code != http.StatusOK {
		t.Fatalf("renamed check: status %d", code)
	}
	if !third.Cached || third.ExploredNow != 0 {
		t.Fatalf("renamed resubmission missed the cache: %+v", third)
	}

	// A different machine set is a different key: no false hit.
	var fourth CheckResponse
	if code := postJSON(t, hs.URL+"/v1/check", CheckRequest{Litmus: fuzz.EmitLitmus(p), Machines: "tso"}, &fourth); code != http.StatusOK {
		t.Fatalf("narrowed check: status %d", code)
	}
	if fourth.Cached {
		t.Fatalf("different machine set was answered from the cache")
	}
}

// TestCheckEndpointRejectsBadInput pins the request validation surface.
func TestCheckEndpointRejectsBadInput(t *testing.T) {
	_, hs := newTestService(t)
	for name, req := range map[string]CheckRequest{
		"empty program":   {Litmus: ""},
		"unparseable":     {Litmus: "this is not a litmus program"},
		"unknown machine": {Litmus: func() string { _, p := ProgramFor(1, 0); return fuzz.EmitLitmus(p) }(), Machines: "no-such-machine"},
	} {
		if code := postJSON(t, hs.URL+"/v1/check", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want %d", name, code, http.StatusBadRequest)
		}
	}
}

// waitDone polls a campaign's status until it reports done.
func waitDone(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st CampaignStatus
		if code := getJSON(t, base+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if st.Done {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return CampaignStatus{}
}

// TestCampaignSubmitAndStream submits a campaign over HTTP, follows its
// NDJSON event stream, and checks the final report matches a direct Runner
// run of the same spec.
func TestCampaignSubmitAndStream(t *testing.T) {
	_, hs := newTestService(t)
	spec := Spec{Seeds: 5, BaseSeed: 1, Machines: "tso"}

	var accepted CampaignStatus
	if code := postJSON(t, hs.URL+"/v1/campaigns", spec, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if accepted.ID == "" {
		t.Fatalf("no campaign id assigned")
	}
	final := waitDone(t, hs.URL, accepted.ID)
	if final.Error != "" {
		t.Fatalf("campaign failed: %s", final.Error)
	}
	if final.Report == nil || len(final.Report.Programs) != spec.Seeds {
		t.Fatalf("final report missing or short: %+v", final.Report)
	}

	// The event stream replays one line per seed plus the terminal line.
	resp, err := http.Get(hs.URL + "/v1/campaigns/" + accepted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != spec.Seeds+1 {
		t.Fatalf("got %d events, want %d seed lines + 1 terminal", len(events), spec.Seeds+1)
	}
	for i, ev := range events[:spec.Seeds] {
		if ev.Type != "seed" || ev.Index != i {
			t.Fatalf("event %d = %+v, want seed event in order", i, ev)
		}
	}
	if events[spec.Seeds].Type != "done" {
		t.Fatalf("terminal event = %+v, want done", events[spec.Seeds])
	}

	// The report served over HTTP is the report a direct run computes.
	direct := &Runner{Spec: spec}
	rep, _, err := direct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarshalReport(rep)
	b, _ := MarshalReport(final.Report)
	if string(a) != string(b) {
		t.Fatalf("served report != direct report")
	}

	// A second identical campaign is fully cache-answered.
	var again CampaignStatus
	if code := postJSON(t, hs.URL+"/v1/campaigns", spec, &again); code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	st := waitDone(t, hs.URL, again.ID)
	if int(st.CacheHits) != spec.Seeds || st.Explored != 0 {
		t.Fatalf("resubmitted campaign: hits=%d explored=%d, want %d/0", st.CacheHits, st.Explored, spec.Seeds)
	}
}

// TestServerRecoverResumesCheckpoint pins the always-on story: a server that
// finds an interrupted campaign's checkpoint in its directory resumes and
// completes it, and the final report equals an uninterrupted run's.
func TestServerRecoverResumesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seeds: 6, BaseSeed: 1, Machines: "tso"}

	// Simulate a previous server instance dying mid-campaign.
	killed := &Runner{Spec: spec, CheckpointDir: filepath.Join(dir, "c0"),
		CheckpointEvery: 2, StopAfter: 3}
	if _, _, err := killed.Run(context.Background()); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}

	srv := NewServer(nil, dir)
	t.Cleanup(srv.Shutdown)
	resumed, err := srv.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != "c0" {
		t.Fatalf("resumed = %v, want [c0]", resumed)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	final := waitDone(t, hs.URL, "c0")
	if final.Error != "" {
		t.Fatalf("recovered campaign failed: %s", final.Error)
	}
	direct := &Runner{Spec: spec}
	rep, _, err := direct.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarshalReport(rep)
	b, _ := MarshalReport(final.Report)
	if string(a) != string(b) {
		t.Fatalf("recovered report != uninterrupted report")
	}

	// A new submission gets an id past the recovered one.
	var accepted CampaignStatus
	if code := postJSON(t, hs.URL+"/v1/campaigns", Spec{Seeds: 1, BaseSeed: 9, Machines: "tso"}, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit after recover: status %d", code)
	}
	if accepted.ID == "c0" {
		t.Fatalf("new campaign reused a recovered id")
	}
	waitDone(t, hs.URL, accepted.ID)
}
