package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"weakorder/internal/chaos"
	"weakorder/internal/faults"
	"weakorder/internal/fuzz"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/par"
	"weakorder/internal/program"
)

// DefaultCheckpointEvery is the default number of seeds between checkpoint
// snapshots (and the granularity of the seed fan-out).
const DefaultCheckpointEvery = 16

// Runner executes one campaign Spec: generates the deterministic program
// stream, fans each block of seeds across the internal/par pool, consults
// the result cache before exploring, assembles the report in seed order, and
// checkpoints after every block. Everything observable — the report, the
// reproducer files, the verbose lines — is a pure function of the Spec, so
// interruption plus resume reproduces an uninterrupted run byte for byte.
type Runner struct {
	Spec Spec
	// Store is the result cache; nil runs uncached.
	Store *Store
	// CheckpointDir, when set, receives atomic checkpoint snapshots after
	// every block and on interruption.
	CheckpointDir string
	// Resume continues the checkpoint in CheckpointDir (which must exist and
	// carry the same Spec). Without Resume, an existing checkpoint is an
	// error — a fresh campaign never silently clobbers a resumable one.
	Resume bool
	// CheckpointEvery is the block size in seeds (0 = DefaultCheckpointEvery).
	CheckpointEvery int
	// Out, when set, receives minimized reproducer files (.litmus and
	// .go.txt), written atomically.
	Out string
	// Budget bounds wall-clock time; exceeding it stops at the next block
	// boundary with a checkpoint, like a kill (0 = unbounded).
	Budget time.Duration
	// Verbose, when non-nil, receives one line per program in seed order.
	Verbose io.Writer
	// Log, when non-nil, receives violation/failure notices as they are
	// found (the CLI passes stderr).
	Log io.Writer
	// Progress, when non-nil, is called once per program in seed order with
	// the report entry and whether it was answered from the cache.
	Progress func(sr SeedReport, cached bool)
	// StopAfter, when positive, interrupts the run after that many seeds
	// have been processed in THIS leg (checkpointing first) — the
	// deterministic stand-in for a kill, used by the resume-equivalence
	// tests and the service shutdown path.
	StopAfter int
	// Workers is the campaign fan-out width (0 = auto from the par budget).
	// Reports are identical at every width — the fan-out is order-preserving
	// — which the resume-equivalence tests pin.
	Workers int
}

// Run executes the campaign until completion or interruption. On
// interruption (context cancellation, budget exhaustion, StopAfter) it
// checkpoints, and returns the partial report with an error satisfying
// errors.Is(err, ErrInterrupted). Hard failures (I/O, internal errors)
// return a nil report.
func (r *Runner) Run(ctx context.Context) (*Report, *Summary, error) {
	if err := r.Spec.Validate(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	sum := &Summary{}

	rep := &Report{Mode: r.Spec.mode(), Seeds: r.Spec.Seeds, BaseSeed: r.Spec.BaseSeed}
	next := 0

	// Fuzz-mode machinery (resolved up front so bad specs fail before work).
	var factories []litmus.Factory
	var opts Options
	xt := *fuzz.DefaultExplorer()
	if r.Spec.MaxStates > 0 {
		xt.MaxStates = r.Spec.MaxStates
	}
	xt.FullExploration = r.Spec.POROff
	if r.Spec.ExploreWorkers != 0 {
		xt.Workers = r.Spec.ExploreWorkers
	}
	var rates faults.Rates
	switch r.Spec.mode() {
	case ModeFuzz:
		var err error
		factories, err = litmus.FactoriesByNames(r.Spec.Machines)
		if err != nil {
			return nil, nil, err
		}
		if len(factories) == 0 {
			return nil, nil, errors.New("campaign: no machines selected")
		}
		for _, f := range factories {
			rep.Machines = append(rep.Machines, f.Name)
		}
		opts = Options{Machines: rep.Machines, MaxStates: xt.MaxStates, MaxTraceOps: xt.MaxTraceOps}
	case ModeChaos:
		var err error
		if rates, err = faults.ParseRates(r.Spec.FaultRates); err != nil {
			return nil, nil, err
		}
		opts = Options{Machines: []string{"timed-def2"}, MaxStates: xt.MaxStates, MaxTraceOps: xt.MaxTraceOps,
			Chaos: true, FaultRates: rates}
	}

	// Resume or start fresh. A fresh campaign refuses to overwrite an
	// existing checkpoint; a resume refuses a spec mismatch. Both guards
	// exist so crash recovery can never silently compute the wrong report.
	if r.CheckpointDir != "" {
		cp, err := LoadCheckpoint(r.CheckpointDir)
		switch {
		case r.Resume && err != nil:
			return nil, nil, fmt.Errorf("campaign: resuming %s: %w", r.CheckpointDir, err)
		case r.Resume:
			if !SameSpec(cp.Spec, r.Spec) {
				return nil, nil, fmt.Errorf("campaign: checkpoint in %s was written under a different spec", r.CheckpointDir)
			}
			rep = cp.Report
			next = cp.Next
			sum.CacheHits = cp.CacheHits
			sum.Explored = cp.Explored
		case err == nil:
			return nil, nil, fmt.Errorf("campaign: %s already holds a checkpoint (resume it, or use a fresh directory)", r.CheckpointDir)
		case !errors.Is(err, os.ErrNotExist):
			return nil, nil, err
		}
	} else if r.Resume {
		return nil, nil, errors.New("campaign: Resume requires CheckpointDir")
	}

	every := r.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}

	type cell struct {
		v      Verdict
		name   string
		config string
		cached bool
	}

	processed := 0 // seeds completed in this leg
	interrupt := func(cause error) (*Report, *Summary, error) {
		if r.CheckpointDir != "" {
			if err := r.checkpoint(rep, next, sum); err != nil {
				return nil, nil, err
			}
		}
		sum.Elapsed = time.Since(start)
		return rep, sum, cause
	}

	for next < r.Spec.Seeds {
		if err := ctx.Err(); err != nil {
			return interrupt(fmt.Errorf("%w after %d/%d seeds: %v", ErrInterrupted, next, r.Spec.Seeds, err))
		}
		if r.Budget > 0 && time.Since(start) > r.Budget {
			return interrupt(fmt.Errorf("%w after %d/%d seeds: wall-clock budget %s exhausted", ErrInterrupted, next, r.Spec.Seeds, r.Budget))
		}
		n := r.Spec.Seeds - next
		if n > every {
			n = every
		}
		if r.StopAfter > 0 {
			if left := r.StopAfter - processed; left <= 0 {
				return interrupt(fmt.Errorf("%w after %d/%d seeds: stop-after limit", ErrInterrupted, next, r.Spec.Seeds))
			} else if n > left {
				n = left
			}
		}

		// One block: verdicts computed in parallel on the shared par pool
		// (auto width, so in-exploration workers and concurrent campaigns
		// share the process budget), assembled strictly in seed order below.
		cells, err := par.Map(make([]struct{}, n), r.Workers, func(j int, _ struct{}) (cell, error) {
			i := next + j
			switch r.Spec.mode() {
			case ModeChaos:
				v, name, cached, err := r.chaosSeed(i, xt, rates, opts)
				return cell{v: v, name: name, cached: cached}, err
			default:
				v, name, cfg, cached, err := r.fuzzSeed(i, factories, xt, opts)
				return cell{v: v, name: name, config: cfg, cached: cached}, err
			}
		})
		if err != nil {
			return nil, nil, err
		}

		for j, c := range cells {
			i := next + j
			if c.cached {
				sum.CacheHits++
			} else {
				sum.Explored += c.v.States
			}
			sr := r.assemble(rep, i, c.name, c.config, c.v)
			if r.Out != "" && len(c.v.Reproducers) > 0 {
				if err := r.writeReproducers(c.name, c.v); err != nil {
					return nil, nil, err
				}
			}
			if r.Verbose != nil {
				r.verboseLine(sr)
			}
			if r.Progress != nil {
				r.Progress(sr, c.cached)
			}
		}
		next += n
		processed += n

		if r.CheckpointDir != "" {
			if err := r.checkpoint(rep, next, sum); err != nil {
				return nil, nil, err
			}
		}
	}

	sum.Elapsed = time.Since(start)
	return rep, sum, nil
}

// checkpoint writes an atomic snapshot of the campaign at seed boundary next.
func (r *Runner) checkpoint(rep *Report, next int, sum *Summary) error {
	return WriteCheckpoint(r.CheckpointDir, &Checkpoint{
		Version:   CheckpointVersion,
		Spec:      r.Spec,
		Next:      next,
		Report:    rep,
		CacheHits: sum.CacheHits,
		Explored:  sum.Explored,
	})
}

// fuzzSeed computes (or retrieves) the verdict of fuzz-campaign seed i.
func (r *Runner) fuzzSeed(i int, factories []litmus.Factory, xt model.Explorer, opts Options) (Verdict, string, string, bool, error) {
	cfgName, p := ProgramFor(r.Spec.BaseSeed, i)
	v, cached, err := FuzzVerdict(r.Store, p, factories, xt, opts, r.Spec.Minimize)
	if err != nil {
		return Verdict{}, "", "", false, err
	}
	return v, p.Name, cfgName, cached, nil
}

// FuzzVerdict computes — or retrieves from store — the differential verdict
// of p under opts. It is the one verdict path shared by the campaign Runner
// and the server's single-program endpoint, so both populate and consult the
// same cache entries. A cached verdict that lacks reproducers is treated as
// a miss when minimization is requested (the entry is then recomputed with
// reproducers and overwritten, upgrading the cache).
func FuzzVerdict(store *Store, p *program.Program, factories []litmus.Factory, xt model.Explorer, opts Options, minimize bool) (Verdict, bool, error) {
	var key [16]byte
	if store != nil {
		key = Key(p, opts)
		if data, ok := store.Get(key); ok {
			var v Verdict
			if err := json.Unmarshal(data, &v); err == nil &&
				(!minimize || len(v.Violating) == 0 || v.Reproducers != nil) {
				return v, true, nil
			}
			// Undecodable or missing requested reproducers: recompute and
			// overwrite.
		}
	}
	x := xt
	chk := &fuzz.Checker{Explorer: &x, Machines: factories}
	crep, err := chk.Check(p)
	var v Verdict
	switch {
	case err != nil && errors.Is(err, model.ErrStateBudget):
		v.Skipped = true
	case err != nil:
		return Verdict{}, false, err
	default:
		v.DRF0 = crep.DRF0
		v.SCOutcomes = crep.SCOutcomes
		v.RacyNonSC = crep.RacyNonSC()
		v.Violating = crep.Violating()
		v.States = crep.States
		if len(v.Violating) > 0 && minimize {
			minimizeInto(&v, p, &x)
		}
	}
	if store != nil {
		if err := putVerdict(store, key, &v); err != nil {
			return Verdict{}, false, err
		}
	}
	return v, false, nil
}

// minimizeInto delta-debugs p against each violating machine, recording the
// reproducers in the verdict (and hence in the cache: a resumed or cache-hit
// campaign re-emits identical files without re-shrinking).
func minimizeInto(v *Verdict, p *program.Program, x *model.Explorer) {
	v.Reproducers = make(map[string]string, len(v.Violating))
	v.ReproducersGo = make(map[string]string, len(v.Violating))
	for _, name := range v.Violating {
		f, ok := litmus.FactoryByName(name)
		if !ok {
			continue // violating names come from the factory list
		}
		min := fuzz.Minimize(p, f, x)
		sz := fuzz.SizeOf(min)
		header := []string{
			fmt.Sprintf("minimized reproducer: %s violates Definition 2 on %s", p.Name, name),
			fmt.Sprintf("size: %d thread(s), longest %d op(s), %d address(es)", sz.Threads, sz.MaxOps, sz.Addrs),
			fmt.Sprintf("non-SC outcomes: %v", fuzz.ExtraOutcomes(min, f, x)),
		}
		v.Reproducers[name] = fuzz.EmitLitmus(min, header...)
		v.ReproducersGo[name] = fmt.Sprintf("// %s: minimized Definition-2 violation on %s\n%s", min.Name, name, fuzz.EmitGo(min))
	}
}

// chaosSeed computes (or retrieves) the verdict of chaos-campaign seed i.
func (r *Runner) chaosSeed(i int, xt model.Explorer, rates faults.Rates, opts Options) (Verdict, string, bool, error) {
	p := ChaosProgramFor(r.Spec.BaseSeed, i)
	faultSeed := r.Spec.FaultSeed + int64(i)
	opts.FaultSeed = faultSeed
	var key [16]byte
	if r.Store != nil {
		key = Key(p, opts)
		if data, ok := r.Store.Get(key); ok {
			var v Verdict
			if err := json.Unmarshal(data, &v); err == nil {
				return v, p.Name, true, nil
			}
		}
	}
	x := xt
	var v Verdict
	scOut, err := chaos.SCOutcomes(p, &x)
	if err != nil && errors.Is(err, model.ErrStateBudget) {
		v.Skipped = true
	} else if err != nil {
		return Verdict{}, "", false, err
	} else {
		c, err := chaos.RunCase(p, faultSeed, rates, chaos.CanonicalSet(scOut))
		if err != nil {
			v.CompletionError = err.Error()
		} else {
			v.Completed = true
			v.Contained = c.Contained
			v.Faults = c.Faults
			v.Retries = c.Retries
			v.Tolerated = c.Tolerated
		}
	}
	if r.Store != nil {
		if err := putVerdict(r.Store, key, &v); err != nil {
			return Verdict{}, "", false, err
		}
	}
	return v, p.Name, false, nil
}

// putVerdict stores a verdict in the cache.
func putVerdict(store *Store, key [16]byte, v *Verdict) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return store.Put(key, data)
}

// assemble folds seed i's verdict into the report, in seed order, and
// returns the report entry.
func (r *Runner) assemble(rep *Report, i int, name, config string, v Verdict) SeedReport {
	sr := SeedReport{
		Index: i, Seed: r.Spec.BaseSeed + int64(i), Name: name, Config: config,
		DRF0: v.DRF0, Skipped: v.Skipped, SCOutcomes: v.SCOutcomes,
		RacyNonSC: v.RacyNonSC, Violating: v.Violating, Reproducers: v.Reproducers,
	}
	if rep.Mode == ModeChaos {
		sr.FaultSeed = r.Spec.FaultSeed + int64(i)
		sr.Completed = v.Completed
		sr.CompletionError = v.CompletionError
		sr.Contained = v.Contained
		sr.Faults = v.Faults
		sr.Retries = v.Retries
		sr.Tolerated = v.Tolerated
	}
	switch {
	case rep.Mode == ModeChaos:
		switch {
		case v.Skipped:
			rep.Skipped++
		case !v.Completed:
			rep.Failures++
			if r.Log != nil {
				fmt.Fprintf(r.Log, "wofuzz: CHAOS COMPLETION FAILURE: %s\n", v.CompletionError)
			}
		default:
			rep.Checked++
			rep.Faults += v.Faults
			rep.Retries += v.Retries
			rep.Tolerated += v.Tolerated
			if !v.Contained {
				rep.Failures++
				if r.Log != nil {
					fmt.Fprintf(r.Log, "wofuzz: CHAOS CONTAINMENT ESCAPE: %s (seed %d, fault seed %d) outcome outside the SC set\n",
						name, sr.Seed, sr.FaultSeed)
				}
			}
		}
	case v.Skipped:
		rep.Skipped++
	default:
		rep.Checked++
		if v.DRF0 {
			rep.DRF0++
		} else {
			rep.Racy++
		}
		if v.RacyNonSC {
			rep.RacyNonSC++
		}
		if len(v.Violating) > 0 {
			rep.Violations++
			if r.Log != nil {
				fmt.Fprintf(r.Log, "wofuzz: VIOLATION: %s breaks Definition 2 on %v\n", name, v.Violating)
			}
		}
	}
	rep.Programs = append(rep.Programs, sr)
	return sr
}

// verboseLine prints the per-program line in the historical wofuzz format.
func (r *Runner) verboseLine(sr SeedReport) {
	if r.Spec.mode() == ModeChaos {
		fmt.Fprintf(r.Verbose, "[%3d] seed=%-6d fault-seed=%-6d %-22s faults=%-3d retries=%-3d tolerated=%-3d contained=%v\n",
			sr.Index, sr.Seed, sr.FaultSeed, sr.Name, sr.Faults, sr.Retries, sr.Tolerated, sr.Contained)
		return
	}
	fmt.Fprintf(r.Verbose, "[%3d] seed=%-6d %-12s %-22s drf0=%-5v skipped=%v violating=%v\n",
		sr.Index, sr.Seed, sr.Config, sr.Name, sr.DRF0, sr.Skipped, sr.Violating)
}

// writeReproducers atomically writes the verdict's minimized reproducers
// into Out, under the historical names (<prog>-min-<machine>.litmus and
// .go.txt). Atomic temp+rename guarantees no kill can leave a truncated
// reproducer that looks valid.
func (r *Runner) writeReproducers(progName string, v Verdict) error {
	if err := os.MkdirAll(r.Out, 0o755); err != nil {
		return err
	}
	for _, machine := range v.Violating {
		lit, ok := v.Reproducers[machine]
		if !ok {
			continue
		}
		base := filepath.Join(r.Out, fmt.Sprintf("%s-min-%s", progName, machine))
		if err := WriteFileAtomic(base+".litmus", []byte(lit), 0o644); err != nil {
			return err
		}
		if code, ok := v.ReproducersGo[machine]; ok {
			if err := WriteFileAtomic(base+".go.txt", []byte(code), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
