// Package campaign turns the fire-and-forget wofuzz/chaos campaigns into a
// resumable, cacheable, long-running service: the simulator as a shared,
// always-on memory-model oracle.
//
// Three pieces compose:
//
//   - Store is a digest-keyed result cache with an append-only on-disk log
//     (length-prefixed, per-frame checksummed, corrupt tails truncated — the
//     same conventions as internal/workload/tracefmt). The cache key is a
//     canonical digest of everything that can change a verdict — the program's
//     canonical binary encoding, the machine set, the state/trace budgets and
//     the fault schedule — and deliberately nothing that cannot (POR on/off
//     and exploration width are outcome-identical by the differential gates
//     pinned in CI, so they stay out of the key). Determinism is what makes
//     the cache sound: the same key always reproduces the same verdict, so a
//     hit can be answered without re-exploration.
//
//   - Runner executes a campaign Spec — the same program stream, verdicts and
//     JSON report as cmd/wofuzz — in deterministic seed order with the seed
//     fan-out scheduled on the internal/par pool, consulting the Store before
//     exploring and periodically writing an atomic checkpoint (next seed,
//     partial report) so a killed campaign resumes where it stopped. A
//     resumed campaign's final report is byte-identical to an uninterrupted
//     one: per-seed verdicts are pure functions of the spec, the report is
//     assembled in seed order, and nothing wall-clock-dependent is in it.
//
//   - Server exposes the oracle over HTTP/JSON: single-program submissions
//     answered from the cache when possible (with exploration-effort counters
//     that prove a hit did no exploration), campaign submissions scheduled in
//     the background, NDJSON progress streams, and crash recovery that
//     resumes checkpointed campaigns on restart.
package campaign

import (
	"fmt"
	"time"

	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// Spec pins everything that determines a campaign's verdicts and report. Two
// runs with equal Specs produce byte-identical reports regardless of
// interruptions, pool widths, or cache state; the checkpoint embeds the Spec
// so a resume cannot silently continue under different parameters.
//
// Wall-clock budget is deliberately NOT part of the Spec: it changes when a
// campaign stops, never what any seed's verdict is, and a budget-stopped
// campaign resumes from its checkpoint like a killed one.
type Spec struct {
	// Mode selects the campaign type: "fuzz" (differential Definition-2
	// campaign, the default) or "chaos" (fault-injection campaign on the
	// timed machine).
	Mode string `json:"mode,omitempty"`
	// Seeds is the number of programs; program i uses BaseSeed+i.
	Seeds    int   `json:"seeds"`
	BaseSeed int64 `json:"base_seed"`
	// Machines is the -machines selection (CSV with the "weak", "all",
	// "broken" aliases); fuzz mode only.
	Machines string `json:"machines,omitempty"`
	// MaxStates bounds each exploration (0 = the fuzzing default).
	MaxStates int `json:"max_states,omitempty"`
	// POROff disables the partial-order reduction. Outcome sets are
	// identical either way (pinned in CI), so this is not part of the cache
	// key — only of the Spec, because it is an execution knob the user set.
	POROff bool `json:"por_off,omitempty"`
	// Minimize delta-debugs violations to minimal reproducers.
	Minimize bool `json:"minimize,omitempty"`
	// ExploreWorkers is the kernel width per exploration (0 or 1 = serial,
	// negative = auto-size from the par budget). Outcome-identical at every
	// width, hence also not in the cache key.
	ExploreWorkers int `json:"explore_workers,omitempty"`
	// FaultSeed and FaultRates configure chaos mode; program i uses
	// FaultSeed+i. FaultRates is the -fault-rates syntax ("" = defaults).
	FaultSeed  int64  `json:"fault_seed,omitempty"`
	FaultRates string `json:"fault_rates,omitempty"`
}

// Validate rejects specs the Runner cannot execute.
func (s *Spec) Validate() error {
	switch s.Mode {
	case "", ModeFuzz, ModeChaos:
	default:
		return fmt.Errorf("campaign: unknown mode %q (want %q or %q)", s.Mode, ModeFuzz, ModeChaos)
	}
	if s.Seeds < 1 {
		return fmt.Errorf("campaign: seeds %d out of range (want at least 1)", s.Seeds)
	}
	return nil
}

// Campaign modes.
const (
	ModeFuzz  = "fuzz"
	ModeChaos = "chaos"
)

// mode returns the effective mode.
func (s *Spec) mode() string {
	if s.Mode == "" {
		return ModeFuzz
	}
	return s.Mode
}

// Verdict is one (program, options) result — the unit the Store caches. It
// carries everything a report or a server response needs, so a cache hit
// reconstructs a byte-identical report entry without re-exploration. States
// records the exploration effort the verdict originally cost; it is reported
// to clients (a hit answers with the stored figure and zero new work) but
// kept out of the campaign report, which must not depend on cache state.
type Verdict struct {
	DRF0       bool     `json:"drf0,omitempty"`
	Skipped    bool     `json:"skipped,omitempty"` // state budget exhausted
	SCOutcomes int      `json:"sc_outcomes,omitempty"`
	RacyNonSC  bool     `json:"racy_non_sc,omitempty"`
	Violating  []string `json:"violating,omitempty"`
	// Reproducers maps violating machine name to the minimized program in
	// litmus text form; ReproducersGo holds the ready-to-paste Builder code
	// (cached so a resumed or cache-hit campaign re-emits identical files).
	Reproducers   map[string]string `json:"reproducers,omitempty"`
	ReproducersGo map[string]string `json:"reproducers_go,omitempty"`
	// States is the total number of distinct states the verdict's
	// explorations visited when it was first computed.
	States int64 `json:"states,omitempty"`

	// Chaos-mode fields.
	Completed       bool   `json:"completed,omitempty"`
	CompletionError string `json:"completion_error,omitempty"`
	Contained       bool   `json:"contained,omitempty"`
	Faults          int    `json:"faults,omitempty"`
	Retries         int64  `json:"retries,omitempty"`
	Tolerated       int64  `json:"tolerated,omitempty"`
}

// SeedReport is one program's entry in the campaign report: the Verdict plus
// the campaign coordinates that locate it. The JSON field names match the
// pre-service wofuzz report so downstream tooling keeps parsing.
type SeedReport struct {
	Index      int      `json:"index"`
	Seed       int64    `json:"seed"`
	Name       string   `json:"name"`
	Config     string   `json:"config"`
	DRF0       bool     `json:"drf0"`
	Skipped    bool     `json:"skipped,omitempty"`
	SCOutcomes int      `json:"sc_outcomes,omitempty"`
	RacyNonSC  bool     `json:"racy_non_sc,omitempty"`
	Violating  []string `json:"violating,omitempty"`
	// Reproducers maps violating machine name to the minimized program in
	// litmus text form (only when Spec.Minimize is on).
	Reproducers map[string]string `json:"reproducers,omitempty"`

	// Chaos-mode fields.
	FaultSeed       int64  `json:"fault_seed,omitempty"`
	Completed       bool   `json:"completed,omitempty"`
	CompletionError string `json:"completion_error,omitempty"`
	Contained       bool   `json:"contained,omitempty"`
	Faults          int    `json:"faults,omitempty"`
	Retries         int64  `json:"retries,omitempty"`
	Tolerated       int64  `json:"tolerated,omitempty"`
}

// Report is the campaign's JSON report. It contains nothing wall-clock- or
// cache-dependent: a resumed campaign and an uninterrupted one marshal to
// identical bytes (the acceptance property the resume tests pin). Elapsed
// time and cache-hit counts are runtime observations, printed by the CLI and
// returned by the server, never embedded here.
type Report struct {
	Mode     string   `json:"mode"`
	Seeds    int      `json:"seeds"`
	BaseSeed int64    `json:"base_seed"`
	Machines []string `json:"machines,omitempty"`

	Checked    int `json:"checked"`
	Skipped    int `json:"skipped"`
	DRF0       int `json:"drf0,omitempty"`
	Racy       int `json:"racy,omitempty"`
	RacyNonSC  int `json:"racy_non_sc,omitempty"`
	Violations int `json:"violations,omitempty"`

	// Chaos-mode totals.
	Failures  int   `json:"failures,omitempty"`
	Faults    int   `json:"faults,omitempty"`
	Retries   int64 `json:"retries,omitempty"`
	Tolerated int64 `json:"tolerated,omitempty"`

	Programs []SeedReport `json:"programs"`
}

// ConfigFor varies the fuzz generator deterministically across campaign
// indices so a single run sweeps light/dense sync, RMW-heavy mixes, guarded
// conditionals, and three-processor programs without any randomness beyond
// the seed. (Moved verbatim from cmd/wofuzz so the CLI, the server, and the
// tests generate the identical program stream.)
func ConfigFor(i int) (string, workload.RandomConfig) {
	switch i % 6 {
	case 0:
		return "2p-default", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4}
	case 1:
		return "2p-sparse", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 10}
	case 2:
		return "2p-rmw", workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 2, Ops: 4, SyncDensity: 60, RMWPct: 70, FetchAddPct: 40}
	case 3:
		return "3p-dense", workload.RandomConfig{Procs: 3, DataVars: 1, SyncVars: 1, Ops: 3, SyncDensity: 70}
	case 4:
		return "2p-guarded", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 3, SyncDensity: 50, CondPct: 50}
	default:
		return "2p-syncread", workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 1, Ops: 4, SyncDensity: 50, SyncReadPct: 80}
	}
}

// ProgramFor generates fuzz-campaign program i: every 7th program comes from
// the guarded producer/consumer shape — the pattern the reserve-bit stall
// exists to protect — so the campaign always exercises that bug class
// directly.
func ProgramFor(baseSeed int64, i int) (cfgName string, p *program.Program) {
	seed := baseSeed + int64(i)
	if i%7 == 6 {
		return "guarded-mp", workload.RandomGuarded(seed, 1+i%2, i%3)
	}
	cfgName, cfg := ConfigFor(i)
	return cfgName, workload.Random(seed, cfg)
}

// ChaosProgramFor generates chaos-campaign program i: alternating guarded
// producer/consumer and DRF0-by-construction random programs, as the -chaos
// campaign always has.
func ChaosProgramFor(baseSeed int64, i int) *program.Program {
	seed := baseSeed + int64(i)
	if i%2 == 0 {
		return workload.RandomGuarded(seed, 2, 3)
	}
	return workload.RandomDRF(seed, 2, 2, 2)
}

// Summary is the runtime account of one Run: what the report deliberately
// omits. CacheHits counts seeds answered from the Store without exploration;
// Explored counts distinct states actually visited by this run.
type Summary struct {
	CacheHits int64         `json:"cache_hits"`
	Explored  int64         `json:"explored_states"`
	Elapsed   time.Duration `json:"-"`
}
