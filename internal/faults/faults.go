// Package faults wraps an interconnect.Fabric with deterministic, seeded
// fault injection: request drops, message duplication, FIFO-preserving extra
// delay, and bounded reordering. It exists to test the directory protocol's
// recovery machinery (retries, idempotent acknowledgement handling, the
// transaction watchdog) against an adversarial fabric while keeping every run
// exactly reproducible from (seed, rates).
//
// Fault model (see DESIGN.md "Fault model" for the full argument):
//
//   - Drops hit only the request class (GetS/GetX/UpdateReq). Requests are
//     the one message class with an end-to-end recovery path: the requester
//     holds an MSHR and retransmits on timeout. Response, invalidation, and
//     completion messages are delivered reliably (possibly late, duplicated,
//     or out of order), as on a real fabric with link-level retransmission.
//   - Duplication, extra delay, and reordering apply to every class.
//   - Extra delay preserves per-(src,dst) order: a delayed message holds a
//     gate that later messages on the same link queue behind, modelling a
//     slow link rather than a misrouted one.
//   - Reordering is delay without the gate — a message overtaken by later
//     traffic on its own link, bounded by MaxDelay cycles, modelling
//     adaptive routing.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"weakorder/internal/cache"
	"weakorder/internal/interconnect"
	"weakorder/internal/sim"
)

// Rates configures per-class fault probabilities. All probabilities are in
// [0,1]; the zero value injects nothing.
type Rates struct {
	// Drop is the probability a request-class message (GetS/GetX/UpdateReq)
	// is silently discarded. Other classes are never dropped (they have no
	// end-to-end recovery path; see the package comment).
	Drop float64
	// Dup is the probability any message is delivered twice; the duplicate
	// arrives 1..MaxDelay cycles late, exercising stale-duplicate handling.
	Dup float64
	// Delay is the probability a message is held 1..MaxDelay extra cycles
	// with per-(src,dst) order preserved.
	Delay float64
	// Reorder is the probability a message is held 1..MaxDelay extra cycles
	// without the ordering gate, letting same-link successors overtake it.
	Reorder float64
	// MaxDelay bounds the extra delay drawn for Dup/Delay/Reorder faults
	// (default 16 when any of those rates is positive).
	MaxDelay sim.Time
}

// DefaultRates returns the documented chaos-campaign default rates.
func DefaultRates() Rates {
	return Rates{Drop: 0.03, Dup: 0.04, Delay: 0.06, Reorder: 0.02, MaxDelay: 16}
}

// Zero reports whether the rates inject nothing.
func (r Rates) Zero() bool {
	return r.Drop <= 0 && r.Dup <= 0 && r.Delay <= 0 && r.Reorder <= 0
}

// String renders the rates in the -fault-rates flag syntax.
func (r Rates) String() string {
	return fmt.Sprintf("drop=%g,dup=%g,delay=%g,reorder=%g,maxdelay=%d",
		r.Drop, r.Dup, r.Delay, r.Reorder, r.MaxDelay)
}

// ParseRates parses the -fault-rates syntax: comma-separated key=value pairs
// with keys drop, dup, delay, reorder (probabilities) and maxdelay (cycles).
// Omitted keys default to DefaultRates' values; an empty string is the full
// default set.
func ParseRates(s string) (Rates, error) {
	r := DefaultRates()
	if strings.TrimSpace(s) == "" {
		return r, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return r, fmt.Errorf("faults: bad rate %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		if key == "maxdelay" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return r, fmt.Errorf("faults: bad maxdelay %q (want positive integer)", val)
			}
			r.MaxDelay = sim.Time(n)
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return r, fmt.Errorf("faults: bad probability %q for %s (want 0..1)", val, key)
		}
		switch key {
		case "drop":
			r.Drop = p
		case "dup":
			r.Dup = p
		case "delay":
			r.Delay = p
		case "reorder":
			r.Reorder = p
		default:
			return r, fmt.Errorf("faults: unknown rate key %q (want drop/dup/delay/reorder/maxdelay)", key)
		}
	}
	if r.MaxDelay < 1 {
		r.MaxDelay = 16
	}
	return r, nil
}

// FaultKind enumerates injected faults.
type FaultKind uint8

const (
	// FaultDrop discarded a request.
	FaultDrop FaultKind = iota
	// FaultDup delivered a late duplicate.
	FaultDup
	// FaultDelay held a message with per-link order preserved.
	FaultDelay
	// FaultReorder held a message while same-link successors passed it.
	FaultReorder
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultDelay:
		return "delay"
	case FaultReorder:
		return "reorder"
	default:
		return "fault?"
	}
}

// Injection records one injected fault, in injection order.
type Injection struct {
	Cycle    sim.Time
	Kind     FaultKind
	Src, Dst interconnect.NodeID
	Msg      cache.Msg
	// Extra is the added delay in cycles (Dup/Delay/Reorder).
	Extra sim.Time
}

// String renders one log line; the chaos harness compares these byte for byte
// across replays.
func (i Injection) String() string {
	return fmt.Sprintf("@%d %s %d->%d %s x%d v=%d seq=%d epoch=%d +%d",
		i.Cycle, i.Kind, i.Src, i.Dst, i.Msg.Kind, i.Msg.Addr, i.Msg.Value,
		i.Msg.Seq, i.Msg.Epoch, i.Extra)
}

// Injector is a fault-injecting Fabric wrapper. With all rates zero it is a
// pure pass-through: every Send goes inline to the wrapped fabric with no
// extra events, no RNG draws, and no log entries, so a zero-rate run is
// byte-identical to one on the bare fabric.
type Injector struct {
	inner  interconnect.Fabric
	engine *sim.Engine
	rng    *rand.Rand
	rates  Rates
	seed   int64
	// gate is the per-(src,dst) release floor maintained by Delay faults:
	// later sends on a gated link are deferred behind the held message so
	// delay faults never violate per-link order.
	gate map[[2]interconnect.NodeID]sim.Time
	log  []Injection
	// counts tallies injected faults by kind.
	counts [4]uint64
}

// NewInjector wraps fabric with seeded fault injection on engine.
func NewInjector(engine *sim.Engine, fabric interconnect.Fabric, seed int64, rates Rates) *Injector {
	if rates.MaxDelay < 1 {
		rates.MaxDelay = 16
	}
	return &Injector{
		inner:  fabric,
		engine: engine,
		rng:    rand.New(rand.NewSource(seed)),
		rates:  rates,
		seed:   seed,
		gate:   make(map[[2]interconnect.NodeID]sim.Time),
	}
}

// Attach implements interconnect.Fabric.
func (f *Injector) Attach(id interconnect.NodeID, e interconnect.Endpoint) { f.inner.Attach(id, e) }

// Messages implements interconnect.Fabric: messages that reached the wrapped
// fabric (dropped ones never do; duplicates count twice).
func (f *Injector) Messages() uint64 { return f.inner.Messages() }

// Log returns the injection log in injection order.
func (f *Injector) Log() []Injection { return f.log }

// LogString renders the whole injection log, one line per fault — the replay
// fingerprint the chaos harness compares byte for byte.
func (f *Injector) LogString() string {
	var b strings.Builder
	for _, inj := range f.log {
		b.WriteString(inj.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Counts returns fault tallies by kind name.
func (f *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, 4)
	for k, n := range f.counts {
		if n > 0 {
			out[FaultKind(k).String()] = n
		}
	}
	return out
}

// CountsString renders the tallies deterministically (sorted by kind name).
func (f *Injector) CountsString() string {
	m := f.Counts()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// isRequest reports whether the message is request-class (the only droppable
// class; see the package comment).
func isRequest(m interconnect.Message) (cache.Msg, bool) {
	msg, ok := m.(cache.Msg)
	if !ok {
		return cache.Msg{}, false
	}
	switch msg.Kind {
	case cache.MsgGetS, cache.MsgGetX, cache.MsgUpdateReq:
		return msg, true
	}
	return msg, false
}

func (f *Injector) record(kind FaultKind, src, dst interconnect.NodeID, msg cache.Msg, extra sim.Time) {
	f.counts[kind]++
	f.log = append(f.log, Injection{
		Cycle: f.engine.Now(), Kind: kind, Src: src, Dst: dst, Msg: msg, Extra: extra,
	})
}

// Send implements interconnect.Fabric.
func (f *Injector) Send(src, dst interconnect.NodeID, m interconnect.Message) {
	if f.rates.Zero() {
		f.inner.Send(src, dst, m)
		return
	}
	msg, isReq := isRequest(m)
	now := f.engine.Now()
	link := [2]interconnect.NodeID{src, dst}

	if isReq && f.rng.Float64() < f.rates.Drop {
		f.record(FaultDrop, src, dst, msg, 0)
		return
	}
	if f.rng.Float64() < f.rates.Dup {
		// The duplicate is a spurious artifact: it arrives late and ignores
		// link order, exercising stale-duplicate suppression downstream.
		extra := 1 + sim.Time(f.rng.Int63n(int64(f.rates.MaxDelay)))
		f.record(FaultDup, src, dst, msg, extra)
		f.engine.After(extra, func() { f.inner.Send(src, dst, m) })
	}

	// One delay decision per message: order-preserving (Delay) first, then
	// order-violating (Reorder).
	var handoff sim.Time // absolute time of the deferred inner.Send; 0 = inline
	if f.rng.Float64() < f.rates.Delay {
		extra := 1 + sim.Time(f.rng.Int63n(int64(f.rates.MaxDelay)))
		handoff = now + extra
		if g := f.gate[link]; handoff < g {
			handoff = g
		}
		f.gate[link] = handoff
		f.record(FaultDelay, src, dst, msg, handoff-now)
	} else if f.rng.Float64() < f.rates.Reorder {
		extra := 1 + sim.Time(f.rng.Int63n(int64(f.rates.MaxDelay)))
		handoff = now + extra
		f.record(FaultReorder, src, dst, msg, extra)
	} else if g := f.gate[link]; g > now {
		// The link is gated by an earlier Delay fault: queue behind it so
		// delay faults never reorder a link. (Handoffs at the same cycle
		// run in schedule order, preserving the original send order.)
		handoff = g
	}

	if handoff > 0 {
		f.engine.At(handoff, func() { f.inner.Send(src, dst, m) })
		return
	}
	f.inner.Send(src, dst, m)
}
