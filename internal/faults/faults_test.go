package faults

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/interconnect"
	"weakorder/internal/sim"
)

// sink records deliveries with arrival times.
type sink struct {
	engine *sim.Engine
	got    []arrival
}

type arrival struct {
	src interconnect.NodeID
	msg interconnect.Message
	at  sim.Time
}

func (s *sink) Deliver(src interconnect.NodeID, msg interconnect.Message) {
	s.got = append(s.got, arrival{src, msg, s.engine.Now()})
}

func req(i int) cache.Msg  { return cache.Msg{Kind: cache.MsgGetS, Addr: 1, Seq: uint64(i)} }
func resp(i int) cache.Msg { return cache.Msg{Kind: cache.MsgData, Addr: 1, Seq: uint64(i)} }

// TestZeroRatePassThrough pins the Injector's pass-through contract: with all
// rates zero, a run over the wrapped fabric is byte-identical to one over the
// bare fabric — same arrival stream, same message count, and an empty
// injection log, so wrapping is free when faults are off.
func TestZeroRatePassThrough(t *testing.T) {
	deliver := func(wrap bool) ([]arrival, uint64, int) {
		e := sim.NewEngine(0, 0)
		net := interconnect.NewNetwork(e, 5, 7, rand.New(rand.NewSource(42)), true)
		var fab interconnect.Fabric = net
		var inj *Injector
		if wrap {
			inj = NewInjector(e, net, 99, Rates{})
			fab = inj
		}
		s := &sink{engine: e}
		fab.Attach(1, s)
		fab.Attach(2, s)
		for i := 0; i < 20; i++ {
			fab.Send(0, interconnect.NodeID(1+i%2), resp(i))
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		logLen := 0
		if inj != nil {
			logLen = len(inj.Log())
		}
		return s.got, fab.Messages(), logLen
	}
	bare, bareN, _ := deliver(false)
	wrapped, wrapN, logLen := deliver(true)
	if !reflect.DeepEqual(bare, wrapped) {
		t.Fatalf("zero-rate injector changed the delivery stream:\nbare:    %v\nwrapped: %v", bare, wrapped)
	}
	if bareN != wrapN {
		t.Errorf("message counts diverged: bare %d, wrapped %d", bareN, wrapN)
	}
	if logLen != 0 {
		t.Errorf("zero-rate injector logged %d injections", logLen)
	}
}

// TestDelayFaultsPreserveLinkOrder pins the Delay gate: even with every
// message delayed by a random extra, per-(src,dst) delivery order matches
// send order, on both links, across seeds — a Delay fault models a slow FIFO
// link, never a misrouted message.
func TestDelayFaultsPreserveLinkOrder(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		e := sim.NewEngine(0, 0)
		net := interconnect.NewNetwork(e, 3, 0, nil, true)
		inj := NewInjector(e, net, seed, Rates{Delay: 1, MaxDelay: 16})
		s1 := &sink{engine: e}
		s2 := &sink{engine: e}
		inj.Attach(1, s1)
		inj.Attach(2, s2)
		for i := 0; i < 10; i++ {
			dst := interconnect.NodeID(1 + i%2)
			e.At(sim.Time(i), func() { inj.Send(0, dst, resp(i)) })
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		for _, s := range []*sink{s1, s2} {
			last := -1
			for _, a := range s.got {
				i := int(a.msg.(cache.Msg).Seq)
				if i < last {
					t.Fatalf("seed %d: delay fault reordered a link: delivery order %v", seed, s.got)
				}
				last = i
			}
		}
		if len(s1.got)+len(s2.got) != 10 {
			t.Fatalf("seed %d: lost messages: %d+%d", seed, len(s1.got), len(s2.got))
		}
		if inj.Counts()["delay"] != 10 {
			t.Fatalf("seed %d: counts = %v, want 10 delays", seed, inj.Counts())
		}
	}
}

// TestReorderFaultsCanOvertake distinguishes Reorder from Delay: without the
// gate, a held message can be overtaken by later traffic on its own link.
// Sweep seeds until an overtake shows up.
func TestReorderFaultsCanOvertake(t *testing.T) {
	overtaken := false
	for seed := int64(0); seed < 50 && !overtaken; seed++ {
		e := sim.NewEngine(0, 0)
		net := interconnect.NewNetwork(e, 1, 0, nil, true)
		inj := NewInjector(e, net, seed, Rates{Reorder: 0.5, MaxDelay: 16})
		s := &sink{engine: e}
		inj.Attach(1, s)
		for i := 0; i < 10; i++ {
			e.At(sim.Time(i), func() { inj.Send(0, 1, resp(i)) })
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		last := -1
		for _, a := range s.got {
			i := int(a.msg.(cache.Msg).Seq)
			if i < last {
				overtaken = true
			}
			last = i
		}
	}
	if !overtaken {
		t.Error("reorder faults never overtook on any seed; the relaxation is not modeled")
	}
}

// TestDupDeliversLateSecondCopy pins duplication: with dup forced, every
// message arrives exactly twice and the second copy is late.
func TestDupDeliversLateSecondCopy(t *testing.T) {
	e := sim.NewEngine(0, 0)
	net := interconnect.NewNetwork(e, 2, 0, nil, true)
	inj := NewInjector(e, net, 7, Rates{Dup: 1, MaxDelay: 8})
	s := &sink{engine: e}
	inj.Attach(1, s)
	inj.Send(0, 1, resp(0))
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 {
		t.Fatalf("deliveries = %v, want original + duplicate", s.got)
	}
	if s.got[1].at <= s.got[0].at {
		t.Errorf("duplicate not late: %v", s.got)
	}
	if inj.Counts()["dup"] != 1 {
		t.Errorf("counts = %v", inj.Counts())
	}
}

// TestDropHitsOnlyRequests pins the fault model's class restriction: with
// drop forced, request-class messages vanish but responses (which have no
// end-to-end recovery path) are always delivered.
func TestDropHitsOnlyRequests(t *testing.T) {
	e := sim.NewEngine(0, 0)
	net := interconnect.NewNetwork(e, 2, 0, nil, true)
	inj := NewInjector(e, net, 7, Rates{Drop: 1})
	s := &sink{engine: e}
	inj.Attach(1, s)
	inj.Send(0, 1, req(0))  // GetS: droppable
	inj.Send(0, 1, resp(1)) // Data: never dropped
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 1 || s.got[0].msg.(cache.Msg).Kind != cache.MsgData {
		t.Fatalf("deliveries = %v, want exactly the Data message", s.got)
	}
	if inj.Counts()["drop"] != 1 {
		t.Errorf("counts = %v", inj.Counts())
	}
}

// TestInjectionLogReplays pins the replay fingerprint: two injectors with the
// same (seed, rates) over the same send schedule produce byte-identical logs
// and tallies.
func TestInjectionLogReplays(t *testing.T) {
	campaign := func() (string, string) {
		e := sim.NewEngine(0, 0)
		net := interconnect.NewNetwork(e, 3, 0, nil, true)
		inj := NewInjector(e, net, 12345, DefaultRates())
		s := &sink{engine: e}
		inj.Attach(1, s)
		inj.Attach(2, s)
		for i := 0; i < 200; i++ {
			dst := interconnect.NodeID(1 + i%2)
			m := resp(i)
			if i%3 == 0 {
				m = req(i)
			}
			e.At(sim.Time(i), func() { inj.Send(0, dst, m) })
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		return inj.LogString(), inj.CountsString()
	}
	log1, counts1 := campaign()
	log2, counts2 := campaign()
	if log1 != log2 {
		t.Fatalf("injection logs diverged across replays:\n--- first ---\n%s--- second ---\n%s", log1, log2)
	}
	if counts1 != counts2 {
		t.Fatalf("counts diverged: %q vs %q", counts1, counts2)
	}
	if log1 == "" {
		t.Fatal("default rates injected nothing over 200 messages")
	}
	for _, line := range strings.Split(strings.TrimRight(log1, "\n"), "\n") {
		if !strings.HasPrefix(line, "@") {
			t.Fatalf("malformed log line %q", line)
		}
	}
}

// TestParseRates covers the -fault-rates syntax: defaults, overrides, and
// every rejection path.
func TestParseRates(t *testing.T) {
	valid := []struct {
		in   string
		want Rates
	}{
		{"", DefaultRates()},
		{"  ", DefaultRates()},
		{"drop=0", Rates{Drop: 0, Dup: 0.04, Delay: 0.06, Reorder: 0.02, MaxDelay: 16}},
		{"drop=0.5,dup=0.25", Rates{Drop: 0.5, Dup: 0.25, Delay: 0.06, Reorder: 0.02, MaxDelay: 16}},
		{"delay=1, reorder=0.125, maxdelay=4", Rates{Drop: 0.03, Dup: 0.04, Delay: 1, Reorder: 0.125, MaxDelay: 4}},
	}
	for _, c := range valid {
		got, err := ParseRates(c.in)
		if err != nil {
			t.Errorf("ParseRates(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseRates(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	invalid := []struct {
		in   string
		want string
	}{
		{"drop", "want key=value"},
		{"drop=2", "bad probability"},
		{"drop=-0.1", "bad probability"},
		{"dup=nope", "bad probability"},
		{"maxdelay=0", "bad maxdelay"},
		{"maxdelay=x", "bad maxdelay"},
		{"jam=0.5", "unknown rate key"},
	}
	for _, c := range invalid {
		if _, err := ParseRates(c.in); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseRates(%q) error = %v, want substring %q", c.in, err, c.want)
		}
	}
}

// TestRatesStringRoundTrips pins that the String rendering parses back to the
// same rates — the format wosim echoes in its injection summary.
func TestRatesStringRoundTrips(t *testing.T) {
	r := Rates{Drop: 0.125, Dup: 0.0625, Delay: 0.25, Reorder: 0.5, MaxDelay: 9}
	got, err := ParseRates(r.String())
	if err != nil {
		t.Fatalf("ParseRates(%q): %v", r.String(), err)
	}
	if got != r {
		t.Fatalf("round trip: %+v -> %q -> %+v", r, r.String(), got)
	}
}
