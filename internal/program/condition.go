package program

import (
	"fmt"
	"strings"

	"weakorder/internal/mem"
)

// FinalState is what a condition is evaluated against: the final register
// files of all threads and the final memory contents.
type FinalState struct {
	Regs []([NumRegs]mem.Value) // indexed by thread
	Mem  map[mem.Addr]mem.Value
}

// Cond is a predicate over a FinalState, used by litmus tests to describe the
// outcome of interest ("exists" clauses).
type Cond interface {
	Eval(s *FinalState) bool
	String() string
}

// RegEq is the atom "thread:rN = v".
type RegEq struct {
	Thread int
	Reg    Reg
	Value  mem.Value
}

// Eval implements Cond.
func (c RegEq) Eval(s *FinalState) bool {
	if c.Thread < 0 || c.Thread >= len(s.Regs) {
		return false
	}
	return s.Regs[c.Thread][c.Reg] == c.Value
}

// String implements Cond.
func (c RegEq) String() string { return fmt.Sprintf("%d:r%d=%d", c.Thread, c.Reg, c.Value) }

// MemEq is the atom "[x] = v" over final memory.
type MemEq struct {
	Addr  mem.Addr
	Name  string // symbolic name for printing, may be empty
	Value mem.Value
}

// Eval implements Cond.
func (c MemEq) Eval(s *FinalState) bool { return s.Mem[c.Addr] == c.Value }

// String implements Cond.
func (c MemEq) String() string {
	n := c.Name
	if n == "" {
		n = fmt.Sprintf("x%d", c.Addr)
	}
	return fmt.Sprintf("[%s]=%d", n, c.Value)
}

// And is conjunction.
type And struct{ L, R Cond }

// Eval implements Cond.
func (c And) Eval(s *FinalState) bool { return c.L.Eval(s) && c.R.Eval(s) }

// String implements Cond.
func (c And) String() string { return fmt.Sprintf("(%s && %s)", c.L, c.R) }

// Or is disjunction.
type Or struct{ L, R Cond }

// Eval implements Cond.
func (c Or) Eval(s *FinalState) bool { return c.L.Eval(s) || c.R.Eval(s) }

// String implements Cond.
func (c Or) String() string { return fmt.Sprintf("(%s || %s)", c.L, c.R) }

// Not is negation.
type Not struct{ X Cond }

// Eval implements Cond.
func (c Not) Eval(s *FinalState) bool { return !c.X.Eval(s) }

// String implements Cond.
func (c Not) String() string { return fmt.Sprintf("!%s", c.X) }

// True is the always-true condition.
type True struct{}

// Eval implements Cond.
func (True) Eval(*FinalState) bool { return true }

// String implements Cond.
func (True) String() string { return "true" }

// ParseCond parses a condition expression. Grammar:
//
//	expr  := term (('||' | '\/') term)*
//	term  := fact (('&&' | '/\') fact)*
//	fact  := '!' fact | '(' expr ')' | atom
//	atom  := THREAD ':' 'r' N '=' V  |  '[' name ']' '=' V  | 'true'
//
// names resolves symbolic location names to addresses; it may be nil when
// only register atoms and numeric x<N> locations are used.
func ParseCond(src string, names map[string]mem.Addr) (Cond, error) {
	p := &condParser{s: src, names: names}
	c, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return nil, fmt.Errorf("condition: trailing input at %q", p.s[p.i:])
	}
	return c, nil
}

type condParser struct {
	s     string
	i     int
	names map[string]mem.Addr
}

func (p *condParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *condParser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.s[p.i:], tok) {
		p.i += len(tok)
		return true
	}
	return false
}

func (p *condParser) expr() (Cond, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.eat("||") || p.eat(`\/`) {
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = Or{l, r}
	}
	return l, nil
}

func (p *condParser) term() (Cond, error) {
	l, err := p.fact()
	if err != nil {
		return nil, err
	}
	for p.eat("&&") || p.eat(`/\`) {
		r, err := p.fact()
		if err != nil {
			return nil, err
		}
		l = And{l, r}
	}
	return l, nil
}

func (p *condParser) fact() (Cond, error) {
	if p.eat("!") {
		x, err := p.fact()
		if err != nil {
			return nil, err
		}
		return Not{x}, nil
	}
	if p.eat("(") {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, fmt.Errorf("condition: missing ')' at %q", p.s[p.i:])
		}
		return x, nil
	}
	return p.atom()
}

func (p *condParser) atom() (Cond, error) {
	p.skipSpace()
	if p.eat("true") {
		return True{}, nil
	}
	if p.eat("[") {
		start := p.i
		for p.i < len(p.s) && p.s[p.i] != ']' {
			p.i++
		}
		if p.i == len(p.s) {
			return nil, fmt.Errorf("condition: unterminated '['")
		}
		name := strings.TrimSpace(p.s[start:p.i])
		p.i++ // ']'
		addr, err := p.resolve(name)
		if err != nil {
			return nil, err
		}
		if !p.eat("=") {
			return nil, fmt.Errorf("condition: expected '=' after [%s]", name)
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return MemEq{Addr: addr, Name: name, Value: v}, nil
	}
	// THREAD ':' 'r' N '=' V
	th, err := p.number()
	if err != nil {
		return nil, fmt.Errorf("condition: expected atom at %q", p.s[p.i:])
	}
	if !p.eat(":") {
		return nil, fmt.Errorf("condition: expected ':' after thread number")
	}
	if !p.eat("r") {
		return nil, fmt.Errorf("condition: expected register after ':'")
	}
	rn, err := p.number()
	if err != nil {
		return nil, err
	}
	if rn < 0 || rn >= NumRegs {
		return nil, fmt.Errorf("condition: register r%d out of range", rn)
	}
	if !p.eat("=") {
		return nil, fmt.Errorf("condition: expected '=' after register")
	}
	v, err := p.number()
	if err != nil {
		return nil, err
	}
	return RegEq{Thread: int(th), Reg: Reg(rn), Value: v}, nil
}

func (p *condParser) resolve(name string) (mem.Addr, error) {
	if p.names != nil {
		if a, ok := p.names[name]; ok {
			return a, nil
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "x%d", &n); err == nil {
		return mem.Addr(n), nil
	}
	return 0, fmt.Errorf("condition: unknown location %q", name)
}

func (p *condParser) number() (mem.Value, error) {
	p.skipSpace()
	start := p.i
	if p.i < len(p.s) && (p.s[p.i] == '-' || p.s[p.i] == '+') {
		p.i++
	}
	for p.i < len(p.s) && p.s[p.i] >= '0' && p.s[p.i] <= '9' {
		p.i++
	}
	if p.i == start || (p.i == start+1 && (p.s[start] == '-' || p.s[start] == '+')) {
		p.i = start
		return 0, fmt.Errorf("condition: expected number at %q", p.s[p.i:])
	}
	var v int64
	if _, err := fmt.Sscanf(p.s[start:p.i], "%d", &v); err != nil {
		return 0, err
	}
	return mem.Value(v), nil
}
