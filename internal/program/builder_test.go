package program

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

func TestBuilderMultiThread(t *testing.T) {
	p, err := NewBuilder("two").
		Init(0, 5).
		Thread().
		Store(0, Imm(1)).
		Halt().
		Thread().
		Load(0, 0).
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
	if p.Init[0] != 5 {
		t.Errorf("init = %v", p.Init)
	}
	if p.Name != "two" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestBuilderLabelsResolvePerThread(t *testing.T) {
	p, err := NewBuilder("labels").
		Thread().
		Label("top").
		Nop(1).
		Jmp("top").
		Thread().
		Nop(1).
		Label("top"). // same label name, different thread
		Jmp("top").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads[0][1].Target != 0 {
		t.Errorf("thread 0 jmp target = %d, want 0", p.Threads[0][1].Target)
	}
	if p.Threads[1][1].Target != 1 {
		t.Errorf("thread 1 jmp target = %d, want 1", p.Threads[1][1].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("bad").Thread().Jmp("nowhere").Build()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewBuilder("bad").Thread().Label("x").Label("x").Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	p, err := NewBuilder("fwd").
		Thread().
		Beq(0, Imm(0), "end").
		Nop(1).
		Label("end").
		Halt().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Threads[0][0].Target != 2 {
		t.Errorf("forward target = %d, want 2", p.Threads[0][0].Target)
	}
}

// TestBuilderErrorPaths sweeps the builder's failure modes table-style: every
// misuse must surface as a loud Build error naming the problem, never as a
// silently mangled program.
func TestBuilderErrorPaths(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Program, error)
		want  string // substring the error must contain
	}{
		{
			name: "duplicate label",
			build: func() (*Program, error) {
				return NewBuilder("bad").Thread().Label("x").Nop(1).Label("x").Halt().Build()
			},
			want: `duplicate label "x"`,
		},
		{
			name: "duplicate label in second thread names the thread",
			build: func() (*Program, error) {
				return NewBuilder("bad").
					Thread().Halt().
					Thread().Label("y").Nop(1).Label("y").Halt().
					Build()
			},
			want: "thread 1",
		},
		{
			name: "branch to undefined label",
			build: func() (*Program, error) {
				return NewBuilder("bad").Thread().Beq(0, Imm(0), "gone").Halt().Build()
			},
			want: `undefined label "gone"`,
		},
		{
			name: "jmp to undefined label",
			build: func() (*Program, error) {
				return NewBuilder("bad").Thread().Jmp("nowhere").Build()
			},
			want: `undefined label "nowhere"`,
		},
		{
			name: "label from another thread does not resolve",
			build: func() (*Program, error) {
				return NewBuilder("bad").
					Thread().Label("top").Halt().
					Thread().Jmp("top").
					Build()
			},
			want: `undefined label "top"`,
		},
		{
			name: "ops before first Thread call",
			build: func() (*Program, error) {
				b := NewBuilder("bad")
				b.Store(0, Imm(1)) // intended for "thread 0", but Thread() was forgotten
				b.Thread().Load(0, 0).Halt()
				return b.Build()
			},
			want: "before the first Thread() call",
		},
		{
			name: "label before first Thread call",
			build: func() (*Program, error) {
				b := NewBuilder("bad")
				b.Label("top")
				b.Thread().Halt()
				return b.Build()
			},
			want: "before the first Thread() call",
		},
		{
			name: "zero-delay nop rejected by validation",
			build: func() (*Program, error) {
				return NewBuilder("bad").Thread().Nop(0).Build()
			},
			want: "nop delay must be >= 1",
		},
		{
			name: "register out of range rejected by validation",
			build: func() (*Program, error) {
				return NewBuilder("bad").Thread().Load(NumRegs, 0).Halt().Build()
			},
			want: "register out of range",
		},
		{
			name: "first error wins",
			build: func() (*Program, error) {
				// Both a duplicate label and an undefined branch: the report
				// must be the duplicate, which happened first.
				return NewBuilder("bad").Thread().Label("x").Label("x").Jmp("gone").Build()
			},
			want: "duplicate label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := tc.build()
			if err == nil {
				t.Fatalf("Build() accepted a bad program: %v", p)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestBuilderImplicitFirstThread(t *testing.T) {
	// Emitting without an explicit Thread() call starts thread 0.
	p, err := NewBuilder("implicit").Halt().Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 1 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
}

func TestBuilderValidationFailure(t *testing.T) {
	_, err := NewBuilder("bad").Thread().Nop(0).Build()
	if err == nil {
		t.Fatal("zero-delay nop accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder("bad").Thread().Jmp("missing").MustBuild()
}

func TestBuilderEmitsAllSyncForms(t *testing.T) {
	p := NewBuilder("sync").
		Thread().
		SyncLoad(0, 1).
		SyncStore(1, Imm(0)).
		TestAndSet(2, 1, Imm(1)).
		FetchAdd(3, 1, Imm(2)).
		Halt().
		MustBuild()
	ops := []Opcode{ISyncLoad, ISyncStore, ISyncRMW, ISyncRMW}
	for i, want := range ops {
		if p.Threads[0][i].Op != want {
			t.Errorf("instr %d op = %v, want %v", i, p.Threads[0][i].Op, want)
		}
	}
	if p.Threads[0][2].RMW != RMWSet || p.Threads[0][3].RMW != RMWAdd {
		t.Error("rmw kinds wrong")
	}
	for i := 0; i < 4; i++ {
		op, ok := p.Threads[0][i].MemOp()
		if !ok || !op.IsSync() {
			t.Errorf("instr %d should be a sync memory op", i)
		}
	}
	_ = mem.OpSyncRMW
}
