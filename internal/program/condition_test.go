package program

import (
	"testing"

	"weakorder/internal/mem"
)

func fs(regs map[int][NumRegs]mem.Value, memory map[mem.Addr]mem.Value) *FinalState {
	n := 0
	for t := range regs {
		if t+1 > n {
			n = t + 1
		}
	}
	s := &FinalState{Mem: memory}
	s.Regs = make([][NumRegs]mem.Value, n)
	for t, r := range regs {
		s.Regs[t] = r
	}
	if s.Mem == nil {
		s.Mem = map[mem.Addr]mem.Value{}
	}
	return s
}

func TestCondAtoms(t *testing.T) {
	state := fs(map[int][NumRegs]mem.Value{0: {5}}, map[mem.Addr]mem.Value{3: 9})
	c, err := ParseCond("0:r0=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Eval(state) {
		t.Error("register atom should hold")
	}
	c, err = ParseCond("[x3]=9", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Eval(state) {
		t.Error("memory atom should hold")
	}
	c, err = ParseCond("[flag]=9", map[string]mem.Addr{"flag": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Eval(state) {
		t.Error("named memory atom should hold")
	}
}

func TestCondOperators(t *testing.T) {
	state := fs(map[int][NumRegs]mem.Value{0: {1}, 1: {0, 2}}, nil)
	cases := []struct {
		src  string
		want bool
	}{
		{"0:r0=1 && 1:r1=2", true},
		{`0:r0=1 /\ 1:r1=3`, false},
		{"0:r0=9 || 1:r1=2", true},
		{`0:r0=9 \/ 1:r1=9`, false},
		{"!0:r0=9", true},
		{"!(0:r0=1 && 1:r1=2)", false},
		{"true", true},
		{"(0:r0=1 || 0:r0=2) && !1:r1=9", true},
	}
	for _, c := range cases {
		cond, err := ParseCond(c.src, nil)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := cond.Eval(state); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestCondPrecedence(t *testing.T) {
	// && binds tighter than ||.
	state := fs(map[int][NumRegs]mem.Value{0: {1}}, nil)
	cond, err := ParseCond("0:r0=1 || 0:r0=2 && 0:r0=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cond.Eval(state) {
		t.Error("should parse as r0=1 || (r0=2 && r0=3)")
	}
}

func TestCondNegativeNumbers(t *testing.T) {
	state := fs(map[int][NumRegs]mem.Value{0: {-4}}, nil)
	cond, err := ParseCond("0:r0=-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cond.Eval(state) {
		t.Error("negative comparison failed")
	}
}

func TestCondErrors(t *testing.T) {
	bad := []string{
		"", "0:r0", "0:r0=", "[x]=", "[x=1", "0:r99=0", "r0=1",
		"0:r0=1 &&", "(0:r0=1", "0:r0=1 extra", "[unknown]=1",
	}
	for _, src := range bad {
		if _, err := ParseCond(src, nil); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestCondOutOfRangeThread(t *testing.T) {
	state := fs(map[int][NumRegs]mem.Value{0: {1}}, nil)
	cond, err := ParseCond("5:r0=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cond.Eval(state) {
		t.Error("atom for a nonexistent thread should be false")
	}
}

func TestCondStrings(t *testing.T) {
	cond, err := ParseCond("!(0:r1=2 && [x7]=3) || true", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "(!(0:r1=2 && [x7]=3) || true)"
	if cond.String() != want {
		t.Errorf("String() = %q, want %q", cond.String(), want)
	}
}
