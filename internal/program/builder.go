package program

import (
	"fmt"

	"weakorder/internal/mem"
)

// Builder assembles a Program thread by thread with symbolic labels, so
// workload generators and tests can express loops without hand-counting
// instruction indices.
type Builder struct {
	prog    *Program
	cur     Code
	labels  map[string]int
	fixups  []fixup
	err     error
	curName int
	// sawThread records whether an explicit Thread() call happened. Emitting
	// instructions without one is the single-thread convenience; mixing the
	// two styles is almost certainly a forgotten first Thread() call and
	// fails loudly (see Thread).
	sawThread bool
}

type fixup struct {
	instr int
	label string
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		prog:   &Program{Name: name, Init: make(map[mem.Addr]mem.Value)},
		labels: make(map[string]int),
	}
}

// Init sets the initial value of a location.
func (b *Builder) Init(a mem.Addr, v mem.Value) *Builder {
	b.prog.Init[a] = v
	return b
}

// Thread finishes the current thread (if any) and starts a new one.
//
// A program built without any Thread() call gets a single implicit thread
// (the convenience used by single-thread interpreter tests); but once
// instructions or labels have been emitted that way, a subsequent Thread()
// call is rejected — it would silently turn the intended first thread into a
// separate one, which is the classic forgotten-first-Thread() bug.
func (b *Builder) Thread() *Builder {
	if !b.sawThread && (len(b.cur) > 0 || len(b.labels) > 0 || len(b.fixups) > 0) {
		b.fail("%d instruction(s)/label(s) emitted before the first Thread() call", len(b.cur)+len(b.labels))
	}
	b.sawThread = true
	b.flush()
	return b
}

// flush resolves labels of the current thread and appends it to the program.
func (b *Builder) flush() {
	if b.cur == nil && len(b.fixups) == 0 && len(b.labels) == 0 {
		b.cur = Code{}
		return
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.fail("undefined label %q in thread %d", f.label, b.curName)
			continue
		}
		b.cur[f.instr].Target = target
	}
	b.prog.Threads = append(b.prog.Threads, b.cur)
	b.cur = Code{}
	b.labels = make(map[string]int)
	b.fixups = nil
	b.curName++
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("program builder: "+format, args...)
	}
}

// Errorf records a construction error under the builder's first-error-wins
// convention, so generators layered on top of the Builder (internal/workload)
// can reject invalid parameter combinations the same way a bad label does:
// the error surfaces from Build instead of panicking mid-generation.
func (b *Builder) Errorf(format string, args ...any) *Builder {
	b.fail(format, args...)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	b.cur = append(b.cur, in)
	return b
}

// Label defines a label at the current position of the current thread.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q in thread %d", name, b.curName)
	}
	b.labels[name] = len(b.cur)
	return b
}

// branchTo records a fixup for the just-emitted branch instruction.
func (b *Builder) branchTo(label string) {
	b.fixups = append(b.fixups, fixup{instr: len(b.cur) - 1, label: label})
}

// Nop emits local work of the given duration (cycles in the timed simulator).
func (b *Builder) Nop(delay int) *Builder { return b.emit(Instr{Op: INop, Delay: delay}) }

// Mov emits rd := src.
func (b *Builder) Mov(rd Reg, src Operand) *Builder {
	return b.emit(Instr{Op: IMov, Rd: rd, Src: src})
}

// Add emits rd := ra + src.
func (b *Builder) Add(rd, ra Reg, src Operand) *Builder {
	return b.emit(Instr{Op: IAdd, Rd: rd, Ra: ra, Src: src})
}

// Sub emits rd := ra - src.
func (b *Builder) Sub(rd, ra Reg, src Operand) *Builder {
	return b.emit(Instr{Op: ISub, Rd: rd, Ra: ra, Src: src})
}

// Mul emits rd := ra * src.
func (b *Builder) Mul(rd, ra Reg, src Operand) *Builder {
	return b.emit(Instr{Op: IMul, Rd: rd, Ra: ra, Src: src})
}

// Load emits a data read rd := mem[addr].
func (b *Builder) Load(rd Reg, addr mem.Addr) *Builder {
	return b.emit(Instr{Op: ILoad, Rd: rd, Addr: addr})
}

// LoadIdx emits a data read rd := mem[base + rIdx].
func (b *Builder) LoadIdx(rd Reg, base mem.Addr, rIdx Reg) *Builder {
	return b.emit(Instr{Op: ILoad, Rd: rd, Addr: base, AddrReg: rIdx, UseAddrReg: true})
}

// Store emits a data write mem[addr] := src.
func (b *Builder) Store(addr mem.Addr, src Operand) *Builder {
	return b.emit(Instr{Op: IStore, Addr: addr, Src: src})
}

// StoreIdx emits a data write mem[base + rIdx] := src.
func (b *Builder) StoreIdx(base mem.Addr, rIdx Reg, src Operand) *Builder {
	return b.emit(Instr{Op: IStore, Addr: base, AddrReg: rIdx, UseAddrReg: true, Src: src})
}

// SyncLoad emits a read-only synchronization operation (Test).
func (b *Builder) SyncLoad(rd Reg, addr mem.Addr) *Builder {
	return b.emit(Instr{Op: ISyncLoad, Rd: rd, Addr: addr})
}

// SyncStore emits a write-only synchronization operation (Unset/Set).
func (b *Builder) SyncStore(addr mem.Addr, src Operand) *Builder {
	return b.emit(Instr{Op: ISyncStore, Addr: addr, Src: src})
}

// TestAndSet emits rd := atomic swap of src into addr (RMWSet).
func (b *Builder) TestAndSet(rd Reg, addr mem.Addr, src Operand) *Builder {
	return b.emit(Instr{Op: ISyncRMW, Rd: rd, Addr: addr, Src: src, RMW: RMWSet})
}

// FetchAdd emits rd := atomic fetch-and-add of src into addr (RMWAdd).
func (b *Builder) FetchAdd(rd Reg, addr mem.Addr, src Operand) *Builder {
	return b.emit(Instr{Op: ISyncRMW, Rd: rd, Addr: addr, Src: src, RMW: RMWAdd})
}

// Beq emits: if ra == src goto label.
func (b *Builder) Beq(ra Reg, src Operand, label string) *Builder {
	b.emit(Instr{Op: IBeq, Ra: ra, Src: src})
	b.branchTo(label)
	return b
}

// Bne emits: if ra != src goto label.
func (b *Builder) Bne(ra Reg, src Operand, label string) *Builder {
	b.emit(Instr{Op: IBne, Ra: ra, Src: src})
	b.branchTo(label)
	return b
}

// Blt emits: if ra < src goto label.
func (b *Builder) Blt(ra Reg, src Operand, label string) *Builder {
	b.emit(Instr{Op: IBlt, Ra: ra, Src: src})
	b.branchTo(label)
	return b
}

// Jmp emits an unconditional branch to label.
func (b *Builder) Jmp(label string) *Builder {
	b.emit(Instr{Op: IJmp})
	b.branchTo(label)
	return b
}

// Halt emits thread termination.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: IHalt}) }

// Build finalizes the program, validating labels and instruction encoding.
func (b *Builder) Build() (*Program, error) {
	b.flush()
	// flush on an untouched builder appends an empty first thread; drop
	// trailing empties created by a final Thread()/Build pair.
	for len(b.prog.Threads) > 0 && len(b.prog.Threads[len(b.prog.Threads)-1]) == 0 {
		b.prog.Threads = b.prog.Threads[:len(b.prog.Threads)-1]
	}
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error, for tests and static corpora.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
