package program

import (
	"fmt"

	"weakorder/internal/mem"
)

// maxLocalSteps bounds the number of consecutive non-memory instructions a
// thread may execute between memory operations, so that a buggy local loop
// surfaces as an error instead of hanging a simulation.
const maxLocalSteps = 1 << 20

// Thread interprets one thread of a Program. The interpreter runs local
// instructions eagerly; at a memory instruction it stops and exposes the
// Request, which the surrounding machine resolves (immediately for an
// idealized machine, after arbitrary delay and reordering for relaxed ones).
//
// The struct is a value type on purpose: operational model exploration copies
// whole machine states, and copying a Thread must be a plain struct copy.
// (Code is shared and never mutated.)
type Thread struct {
	Code Code
	PC   int
	Regs [NumRegs]mem.Value
	// Halted is set once the thread has executed IHalt or run past the end
	// of its code.
	Halted bool
	// OpIndex counts completed memory operations: it is the program-order
	// index the *next* memory operation will carry.
	OpIndex int

	pendingValid bool
	pendingInstr Instr
	localWork    int // remaining INop delay cycles at the current PC
}

// NewThread returns a thread at the start of code.
func NewThread(code Code) Thread { return Thread{Code: code} }

// Pending reports the memory request the thread is blocked on, running local
// instructions as needed to reach it. ok is false when the thread has halted.
// Pending is idempotent: it may be called repeatedly without side effects
// once a request is exposed.
func (t *Thread) Pending() (Request, bool, error) {
	if t.pendingValid {
		return t.request(), true, nil
	}
	if t.Halted {
		return Request{}, false, nil
	}
	for steps := 0; ; steps++ {
		if steps > maxLocalSteps {
			return Request{}, false, fmt.Errorf("program: thread exceeded %d local steps at pc %d (runaway local loop?)", maxLocalSteps, t.PC)
		}
		if t.PC < 0 || t.PC >= len(t.Code) {
			t.Halted = true
			return Request{}, false, nil
		}
		in := t.Code[t.PC]
		if _, isMem := in.MemOp(); isMem {
			t.pendingValid = true
			t.pendingInstr = in
			return t.request(), true, nil
		}
		switch in.Op {
		case INop:
			// Accumulate local work; a timed simulator drains it with
			// TakeLocalWork before issuing the next memory operation, while
			// untimed machines simply ignore it.
			t.localWork += in.Delay
			t.PC++
		case IMov:
			t.Regs[in.Rd] = t.operand(in.Src)
			t.PC++
		case IAdd:
			t.Regs[in.Rd] = t.Regs[in.Ra] + t.operand(in.Src)
			t.PC++
		case ISub:
			t.Regs[in.Rd] = t.Regs[in.Ra] - t.operand(in.Src)
			t.PC++
		case IMul:
			t.Regs[in.Rd] = t.Regs[in.Ra] * t.operand(in.Src)
			t.PC++
		case IBeq:
			if t.Regs[in.Ra] == t.operand(in.Src) {
				t.PC = in.Target
			} else {
				t.PC++
			}
		case IBne:
			if t.Regs[in.Ra] != t.operand(in.Src) {
				t.PC = in.Target
			} else {
				t.PC++
			}
		case IBlt:
			if t.Regs[in.Ra] < t.operand(in.Src) {
				t.PC = in.Target
			} else {
				t.PC++
			}
		case IJmp:
			t.PC = in.Target
		case IHalt:
			t.Halted = true
			return Request{}, false, nil
		default:
			return Request{}, false, fmt.Errorf("program: unknown opcode %d at pc %d", in.Op, t.PC)
		}
	}
}

// TakeLocalWork returns and clears the INop cycles accumulated since the last
// call. Timed simulators call it after Pending and charge the cycles before
// issuing the pending memory operation (or before halting); untimed machines
// never call it.
func (t *Thread) TakeLocalWork() int {
	d := t.localWork
	t.localWork = 0
	return d
}

// request builds the Request for the pending memory instruction.
func (t *Thread) request() Request {
	in := t.pendingInstr
	op, _ := in.MemOp()
	r := Request{Op: op, Addr: t.effAddr(in), RMW: in.RMW}
	if op.Writes() {
		r.Data = t.operand(in.Src)
	}
	return r
}

// effAddr computes the effective address of a memory instruction.
func (t *Thread) effAddr(in Instr) mem.Addr {
	a := in.Addr
	if in.UseAddrReg {
		a += mem.Addr(t.Regs[in.AddrReg])
	}
	return a
}

// Resolve completes the pending memory operation. For operations with a read
// component, value is the value returned by memory; for pure writes it is
// ignored. Resolve advances the PC and the program-order operation index.
// It panics if no request is pending — that is always a machine bug.
func (t *Thread) Resolve(value mem.Value) {
	if !t.pendingValid {
		panic("program: Resolve with no pending memory request")
	}
	in := t.pendingInstr
	op, _ := in.MemOp()
	if op.Reads() {
		t.Regs[in.Rd] = value
	}
	t.pendingValid = false
	t.PC++
	t.OpIndex++
}

// Blocked reports whether the thread currently has an unresolved memory
// request exposed.
func (t *Thread) Blocked() bool { return t.pendingValid }

// Done reports whether the thread has halted with no pending request.
func (t *Thread) Done() bool { return t.Halted && !t.pendingValid }

// operand evaluates an operand against the register file.
func (t *Thread) operand(o Operand) mem.Value {
	if o.IsReg {
		return t.Regs[o.Reg]
	}
	return o.Imm
}

// Snapshot returns a compact, canonical encoding of the thread state,
// suitable for hashing machine states during exhaustive exploration.
//
// OpIndex is deliberately excluded: it is a history counter, not
// future-relevant state, and including it would make every iteration of a
// spin loop a distinct state, turning bounded spin-loop state spaces into
// unbounded ones. Explorations that must distinguish histories key on the
// machine's read/sync logs instead (model.KeyResult / model.KeyExecution).
func (t *Thread) Snapshot() string {
	return string(t.AppendSnapshot(make([]byte, 0, 8+NumRegs*4)))
}

// AppendSnapshot appends the Snapshot encoding to b and returns the extended
// slice, so state-key construction can reuse one buffer across an entire
// exploration instead of allocating a string per state. The encoding is a
// self-delimiting varint sequence (prefix-free given the fixed NumRegs), so
// concatenating snapshots of successive threads remains unambiguous.
func (t *Thread) AppendSnapshot(b []byte) []byte {
	b = appendInt(b, int64(t.PC))
	if t.Halted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	if t.pendingValid {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for _, r := range t.Regs {
		b = appendInt(b, int64(r))
	}
	return b
}

// appendInt appends a varint-ish encoding of v.
func appendInt(b []byte, v int64) []byte {
	u := uint64(v<<1) ^ uint64(v>>63) // zigzag
	for u >= 0x80 {
		b = append(b, byte(u)|0x80)
		u >>= 7
	}
	return append(b, byte(u))
}
