// Package program defines the register-machine programs executed by every
// simulated memory system in this repository. A program is a set of threads,
// each a sequence of instructions over 16 registers; memory is accessed with
// data loads/stores and the three synchronization operations of the paper's
// DRF0 model (sync read, sync write, and atomic read-modify-write, i.e.
// Test / Unset / TestAndSet).
//
// The interpreter (Thread) is deliberately decoupled from any memory system:
// it runs local instructions itself and *publishes* memory requests, which
// the surrounding machine (operational model or timed simulator) resolves at
// whatever moment its memory model dictates. This lets one program run
// unchanged on sequentially consistent hardware, on the relaxed machines of
// Figure 1, and on the weakly ordered implementations of Section 5.
package program

import (
	"fmt"

	"weakorder/internal/mem"
)

// Reg names one of the 16 general-purpose registers of a thread.
type Reg int

// NumRegs is the register-file size of each thread.
const NumRegs = 16

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	// INop does nothing for Delay cycles of local work (at least one).
	INop Opcode = iota
	// IMov sets Rd := Src.
	IMov
	// IAdd sets Rd := Ra + Src.
	IAdd
	// ISub sets Rd := Ra - Src.
	ISub
	// IMul sets Rd := Ra * Src.
	IMul
	// ILoad performs a data read: Rd := mem[EA].
	ILoad
	// IStore performs a data write: mem[EA] := Src.
	IStore
	// ISyncLoad performs a read-only synchronization operation (Test):
	// Rd := mem[EA], recognized by hardware as synchronization.
	ISyncLoad
	// ISyncStore performs a write-only synchronization operation (Unset):
	// mem[EA] := Src, recognized by hardware as synchronization.
	ISyncStore
	// ISyncRMW performs an atomic read-modify-write synchronization
	// operation on EA: Rd := old value; the new value is determined by the
	// RMW kind and Src (TestAndSet writes Src; FetchAdd writes old+Src).
	ISyncRMW
	// IBeq branches to Target if Ra == Src.
	IBeq
	// IBne branches to Target if Ra != Src.
	IBne
	// IBlt branches to Target if Ra < Src.
	IBlt
	// IJmp branches unconditionally to Target.
	IJmp
	// IHalt terminates the thread.
	IHalt
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	names := [...]string{"nop", "mov", "add", "sub", "mul", "ld", "st",
		"sync.ld", "sync.st", "sync.rmw", "beq", "bne", "blt", "jmp", "halt"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// RMWKind selects the write function of an ISyncRMW instruction.
type RMWKind uint8

const (
	// RMWSet writes the Src operand, returning the old value (TestAndSet
	// when Src is 1, Swap in general).
	RMWSet RMWKind = iota
	// RMWAdd writes old+Src, returning the old value (FetchAndAdd).
	RMWAdd
)

// String implements fmt.Stringer.
func (k RMWKind) String() string {
	switch k {
	case RMWSet:
		return "set"
	case RMWAdd:
		return "add"
	default:
		return fmt.Sprintf("rmw(%d)", uint8(k))
	}
}

// Operand is either a register or an immediate value.
type Operand struct {
	IsReg bool
	Reg   Reg
	Imm   mem.Value
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{IsReg: true, Reg: r} }

// Imm returns an immediate operand.
func Imm(v mem.Value) Operand { return Operand{Imm: v} }

// String implements fmt.Stringer.
func (o Operand) String() string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

// Instr is one instruction. Which fields are meaningful depends on Op; the
// zero value of unused fields is ignored.
type Instr struct {
	Op   Opcode
	Rd   Reg     // destination register (mov/add/sub/mul/ld/sync.ld/sync.rmw)
	Ra   Reg     // left source register (add/sub/mul/beq/bne/blt)
	Src  Operand // right source operand (alu/store data/branch comparand/rmw operand)
	Addr mem.Addr
	// AddrReg, when UseAddrReg is set, contributes regs[AddrReg] to the
	// effective address (EA = Addr + regs[AddrReg]). Used by array
	// workloads; litmus tests use absolute addresses.
	AddrReg    Reg
	UseAddrReg bool
	RMW        RMWKind
	Target     int // branch target, instruction index within the thread
	Delay      int // INop local-work cycles (>=1 in the timed simulator)
}

// MemOp returns the mem.Op performed by a memory instruction, and ok=false
// for non-memory instructions.
func (in Instr) MemOp() (mem.Op, bool) {
	switch in.Op {
	case ILoad:
		return mem.OpRead, true
	case IStore:
		return mem.OpWrite, true
	case ISyncLoad:
		return mem.OpSyncRead, true
	case ISyncStore:
		return mem.OpSyncWrite, true
	case ISyncRMW:
		return mem.OpSyncRMW, true
	}
	return 0, false
}

// String implements fmt.Stringer.
func (in Instr) String() string {
	ea := fmt.Sprintf("x%d", in.Addr)
	if in.UseAddrReg {
		ea = fmt.Sprintf("x%d+r%d", in.Addr, in.AddrReg)
	}
	switch in.Op {
	case INop:
		return fmt.Sprintf("nop %d", in.Delay)
	case IMov:
		return fmt.Sprintf("mov r%d, %s", in.Rd, in.Src)
	case IAdd, ISub, IMul:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rd, in.Ra, in.Src)
	case ILoad, ISyncLoad:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.Rd, ea)
	case IStore, ISyncStore:
		return fmt.Sprintf("%s %s, %s", in.Op, ea, in.Src)
	case ISyncRMW:
		return fmt.Sprintf("sync.rmw.%s r%d, %s, %s", in.RMW, in.Rd, ea, in.Src)
	case IBeq, IBne, IBlt:
		return fmt.Sprintf("%s r%d, %s, @%d", in.Op, in.Ra, in.Src, in.Target)
	case IJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case IHalt:
		return "halt"
	default:
		return fmt.Sprintf("?%d", in.Op)
	}
}

// Code is one thread's instruction sequence.
type Code []Instr

// Program is a complete multithreaded program plus initial memory state.
type Program struct {
	Name    string
	Threads []Code
	// Init gives the initial value of every location the program may touch;
	// locations absent from Init start at zero.
	Init map[mem.Addr]mem.Value
}

// NumThreads returns the number of threads.
func (p *Program) NumThreads() int { return len(p.Threads) }

// Addrs returns every address statically referenced by the program (base
// addresses only for register-indexed accesses) plus all Init keys, sorted.
func (p *Program) Addrs() []mem.Addr {
	set := make(map[mem.Addr]bool)
	for _, c := range p.Threads {
		for _, in := range c {
			if _, ok := in.MemOp(); ok {
				set[in.Addr] = true
			}
		}
	}
	for a := range p.Init {
		set[a] = true
	}
	out := make([]mem.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Validate checks that branch targets are in range, register numbers are
// valid, and INop delays are positive.
func (p *Program) Validate() error {
	for t, code := range p.Threads {
		for i, in := range code {
			bad := func(msg string, args ...any) error {
				return fmt.Errorf("T%d@%d (%s): %s", t, i, in, fmt.Sprintf(msg, args...))
			}
			if in.Rd < 0 || in.Rd >= NumRegs || in.Ra < 0 || in.Ra >= NumRegs {
				return bad("register out of range")
			}
			if in.Src.IsReg && (in.Src.Reg < 0 || in.Src.Reg >= NumRegs) {
				return bad("source register out of range")
			}
			switch in.Op {
			case IBeq, IBne, IBlt, IJmp:
				if in.Target < 0 || in.Target >= len(code) {
					return bad("branch target %d out of range [0,%d)", in.Target, len(code))
				}
			case INop:
				if in.Delay < 1 {
					return bad("nop delay must be >= 1")
				}
			case ISyncRMW:
				if in.RMW != RMWSet && in.RMW != RMWAdd {
					return bad("unknown rmw kind %d", in.RMW)
				}
			}
		}
	}
	return nil
}

// Request is a memory request published by a thread: the memory system is
// expected to perform Op at Addr and (for reads) eventually deliver a value
// back via Thread.Resolve.
type Request struct {
	Op   mem.Op
	Addr mem.Addr
	// Data is the value to write for write operations; for OpSyncRMW it is
	// the operand of the RMW function.
	Data mem.Value
	RMW  RMWKind
}

// NewValue computes the value an OpSyncRMW writes given the old value of the
// location. For plain writes it returns Data.
func (r Request) NewValue(old mem.Value) mem.Value {
	if r.Op == mem.OpSyncRMW && r.RMW == RMWAdd {
		return old + r.Data
	}
	return r.Data
}
