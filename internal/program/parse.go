package program

import (
	"fmt"
	"strconv"
	"strings"

	"weakorder/internal/mem"
)

// ParseResult is the outcome of parsing a litmus-style source file: a
// program, the mapping from symbolic location names to addresses, and an
// optional "exists" condition.
type ParseResult struct {
	Program *Program
	Names   map[string]mem.Addr
	Exists  Cond // nil when the source has no exists clause
}

// Parse reads a program in the repository's litmus-like assembly format:
//
//	name: SB
//	init: x=0 y=0
//	thread:
//	    st x, 1
//	    ld r0, y
//	thread:
//	    st y, 1
//	    ld r1, x
//	exists: 0:r0=0 && 1:r1=0
//
// Locations are symbolic names assigned dense addresses in order of first
// appearance (init clause first, then instruction operands). Instructions:
//
//	nop N                  local work
//	mov rD, src            src is rN or an integer
//	add|sub|mul rD, rA, src
//	ld rD, loc  |  ld rD, loc[rI]
//	st loc, src |  st loc[rI], src
//	sync.ld rD, loc        read-only synchronization (Test)
//	sync.st loc, src       write-only synchronization (Unset)
//	tas rD, loc, src       TestAndSet: rD := old, loc := src, atomically
//	faa rD, loc, src       FetchAndAdd: rD := old, loc := old+src, atomically
//	beq|bne|blt rA, src, label
//	jmp label
//	halt
//	label:                 a line ending in ':' defines a label
//
// '#' and '//' begin comments.
func Parse(src string) (*ParseResult, error) {
	p := &parser{
		names: make(map[string]mem.Addr),
		res:   &ParseResult{},
	}
	b := NewBuilder("")
	p.b = b
	inThread := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "name:"):
			p.name = strings.TrimSpace(strings.TrimPrefix(line, "name:"))
		case strings.HasPrefix(line, "init:"):
			if err := p.parseInit(strings.TrimPrefix(line, "init:")); err != nil {
				return nil, fail("%v", err)
			}
		case line == "thread:" || strings.HasPrefix(line, "thread "):
			b.Thread()
			inThread = true
		case strings.HasPrefix(line, "exists:"):
			p.existsSrc = strings.TrimSpace(strings.TrimPrefix(line, "exists:"))
		default:
			if !inThread {
				return nil, fail("instruction %q outside any thread", line)
			}
			if err := p.parseInstr(line); err != nil {
				return nil, fail("%v", err)
			}
		}
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = p.name
	p.res.Program = prog
	p.res.Names = p.names
	if p.existsSrc != "" {
		c, err := ParseCond(p.existsSrc, p.names)
		if err != nil {
			return nil, err
		}
		p.res.Exists = c
	}
	return p.res, nil
}

// MustParse is Parse that panics on error, for static corpora in tests.
func MustParse(src string) *ParseResult {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	b         *Builder
	names     map[string]mem.Addr
	name      string
	existsSrc string
	res       *ParseResult
}

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func (p *parser) addr(name string) mem.Addr {
	if a, ok := p.names[name]; ok {
		return a
	}
	a := mem.Addr(len(p.names))
	p.names[name] = a
	return a
}

func (p *parser) parseInit(s string) error {
	for _, f := range strings.Fields(s) {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return fmt.Errorf("bad init clause %q (want name=value)", f)
		}
		v, err := strconv.ParseInt(f[eq+1:], 10, 64)
		if err != nil {
			return fmt.Errorf("bad init value in %q: %v", f, err)
		}
		p.b.Init(p.addr(f[:eq]), mem.Value(v))
	}
	return nil
}

// parseReg parses "rN".
func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

// parseOperand parses "rN" or an integer literal.
func parseOperand(s string) (Operand, error) {
	if strings.HasPrefix(s, "r") {
		if r, err := parseReg(s); err == nil {
			return R(r), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return Imm(mem.Value(v)), nil
}

// parseLoc parses "name" or "name[rI]"; it returns the base address and the
// optional index register.
func (p *parser) parseLoc(s string) (mem.Addr, Reg, bool, error) {
	if i := strings.IndexByte(s, '['); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return 0, 0, false, fmt.Errorf("bad location %q", s)
		}
		r, err := parseReg(s[i+1 : len(s)-1])
		if err != nil {
			return 0, 0, false, err
		}
		return p.addr(s[:i]), r, true, nil
	}
	return p.addr(s), 0, false, nil
}

// splitArgs splits "a, b, c" into fields.
func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, x := range parts {
		x = strings.TrimSpace(x)
		if x != "" {
			out = append(out, x)
		}
	}
	return out
}

func (p *parser) parseInstr(line string) error {
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t,") {
		p.b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	op := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		op, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitArgs(rest)
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case "nop":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return fmt.Errorf("nop: bad delay %q", args[0])
		}
		p.b.Nop(n)
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		p.b.Mov(rd, src)
	case "add", "sub", "mul":
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return err
		}
		src, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		switch op {
		case "add":
			p.b.Add(rd, ra, src)
		case "sub":
			p.b.Sub(rd, ra, src)
		default:
			p.b.Mul(rd, ra, src)
		}
	case "ld", "sync.ld":
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, idx, useIdx, err := p.parseLoc(args[1])
		if err != nil {
			return err
		}
		if op == "sync.ld" {
			if useIdx {
				return fmt.Errorf("sync.ld: indexed addressing not allowed for synchronization")
			}
			p.b.SyncLoad(rd, base)
		} else if useIdx {
			p.b.LoadIdx(rd, base, idx)
		} else {
			p.b.Load(rd, base)
		}
	case "st", "sync.st":
		if err := need(2); err != nil {
			return err
		}
		base, idx, useIdx, err := p.parseLoc(args[0])
		if err != nil {
			return err
		}
		src, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		if op == "sync.st" {
			if useIdx {
				return fmt.Errorf("sync.st: indexed addressing not allowed for synchronization")
			}
			p.b.SyncStore(base, src)
		} else if useIdx {
			p.b.StoreIdx(base, idx, src)
		} else {
			p.b.Store(base, src)
		}
	case "tas", "faa":
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		base, _, useIdx, err := p.parseLoc(args[1])
		if err != nil {
			return err
		}
		if useIdx {
			return fmt.Errorf("%s: indexed addressing not allowed for synchronization", op)
		}
		src, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		if op == "tas" {
			p.b.TestAndSet(rd, base, src)
		} else {
			p.b.FetchAdd(rd, base, src)
		}
	case "beq", "bne", "blt":
		if err := need(3); err != nil {
			return err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return err
		}
		src, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		switch op {
		case "beq":
			p.b.Beq(ra, src, args[2])
		case "bne":
			p.b.Bne(ra, src, args[2])
		default:
			p.b.Blt(ra, src, args[2])
		}
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		p.b.Jmp(args[0])
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		p.b.Halt()
	default:
		return fmt.Errorf("unknown instruction %q", op)
	}
	return nil
}
