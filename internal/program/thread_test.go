package program

import (
	"testing"

	"weakorder/internal/mem"
)

// runSC executes a single thread against a plain map memory, resolving every
// request immediately — a one-processor SC machine for interpreter testing.
func runSC(t *testing.T, code Code, memory map[mem.Addr]mem.Value) *Thread {
	t.Helper()
	th := NewThread(code)
	for {
		req, ok, err := th.Pending()
		if err != nil {
			t.Fatalf("pending: %v", err)
		}
		if !ok {
			return &th
		}
		old := memory[req.Addr]
		if req.Op.Writes() {
			memory[req.Addr] = req.NewValue(old)
		}
		th.Resolve(old)
	}
}

func TestThreadStraightLine(t *testing.T) {
	p := NewBuilder("t").
		Mov(0, Imm(5)).
		Add(1, 0, Imm(3)).
		Sub(2, 1, R(0)).
		Mul(3, 1, Imm(2)).
		Store(0, R(1)).
		Load(4, 0).
		Halt().
		MustBuild()
	memory := map[mem.Addr]mem.Value{}
	th := runSC(t, p.Threads[0], memory)
	if th.Regs[1] != 8 || th.Regs[2] != 3 || th.Regs[3] != 16 {
		t.Errorf("alu results wrong: %v", th.Regs[:5])
	}
	if memory[0] != 8 || th.Regs[4] != 8 {
		t.Errorf("store/load wrong: mem=%v r4=%d", memory[0], th.Regs[4])
	}
	if !th.Done() {
		t.Error("thread should be done")
	}
	if th.OpIndex != 2 {
		t.Errorf("OpIndex = %d, want 2 memory ops", th.OpIndex)
	}
}

func TestThreadBranchesAndLoop(t *testing.T) {
	// Sum 1..5 into r1 with a blt loop.
	p := NewBuilder("loop").
		Mov(0, Imm(1)).
		Mov(1, Imm(0)).
		Label("top").
		Add(1, 1, R(0)).
		Add(0, 0, Imm(1)).
		Blt(0, Imm(6), "top").
		Store(0, R(1)).
		Halt().
		MustBuild()
	memory := map[mem.Addr]mem.Value{}
	runSC(t, p.Threads[0], memory)
	if memory[0] != 15 {
		t.Errorf("loop sum = %d, want 15", memory[0])
	}
}

func TestThreadRMW(t *testing.T) {
	p := NewBuilder("rmw").
		TestAndSet(0, 1, Imm(1)).
		FetchAdd(1, 2, Imm(5)).
		FetchAdd(2, 2, Imm(5)).
		Halt().
		MustBuild()
	memory := map[mem.Addr]mem.Value{2: 10}
	th := runSC(t, p.Threads[0], memory)
	if th.Regs[0] != 0 || memory[1] != 1 {
		t.Errorf("TAS wrong: r0=%d mem=%d", th.Regs[0], memory[1])
	}
	if th.Regs[1] != 10 || th.Regs[2] != 15 || memory[2] != 20 {
		t.Errorf("FAA wrong: r1=%d r2=%d mem=%d", th.Regs[1], th.Regs[2], memory[2])
	}
}

func TestThreadIndexedAddressing(t *testing.T) {
	p := NewBuilder("idx").
		Mov(0, Imm(3)).
		StoreIdx(10, 0, Imm(7)). // mem[13] = 7
		LoadIdx(1, 10, 0).       // r1 = mem[13]
		Halt().
		MustBuild()
	memory := map[mem.Addr]mem.Value{}
	th := runSC(t, p.Threads[0], memory)
	if memory[13] != 7 || th.Regs[1] != 7 {
		t.Errorf("indexed addressing wrong: mem13=%d r1=%d", memory[13], th.Regs[1])
	}
}

func TestThreadPendingIdempotent(t *testing.T) {
	th := NewThread(Code{{Op: ILoad, Rd: 0, Addr: 5}})
	r1, ok1, _ := th.Pending()
	r2, ok2, _ := th.Pending()
	if !ok1 || !ok2 || r1 != r2 {
		t.Fatal("Pending should be idempotent while blocked")
	}
	if !th.Blocked() {
		t.Error("thread should report blocked")
	}
	th.Resolve(9)
	if th.Regs[0] != 9 {
		t.Error("resolve did not write register")
	}
}

func TestThreadResolveWithoutPendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th := NewThread(Code{})
	th.Resolve(0)
}

func TestThreadRunawayLocalLoop(t *testing.T) {
	th := NewThread(Code{{Op: IJmp, Target: 0}})
	if _, _, err := th.Pending(); err == nil {
		t.Fatal("infinite local loop should error")
	}
}

func TestThreadHaltsPastEnd(t *testing.T) {
	th := NewThread(Code{{Op: IMov, Rd: 0, Src: Imm(1)}})
	_, ok, err := th.Pending()
	if err != nil || ok {
		t.Fatalf("fallthrough should halt: ok=%v err=%v", ok, err)
	}
	if !th.Done() {
		t.Error("thread should be done after running past the end")
	}
}

func TestSnapshotExcludesHistory(t *testing.T) {
	// Two threads in the same machine state but with different completed-op
	// counts must snapshot identically (spin-loop dedup depends on it).
	code := Code{
		{Op: ISyncLoad, Rd: 0, Addr: 0},
		{Op: IBeq, Ra: 0, Src: Imm(0), Target: 0},
		{Op: IHalt},
	}
	a := NewThread(code)
	b := NewThread(code)
	// Spin b once: read 0, branch back.
	if _, ok, _ := b.Pending(); !ok {
		t.Fatal("b should block on sync load")
	}
	b.Resolve(0)
	if _, ok, _ := b.Pending(); !ok { // back at the sync load
		t.Fatal("b should block again")
	}
	if _, ok, _ := a.Pending(); !ok {
		t.Fatal("a should block")
	}
	if a.Snapshot() != b.Snapshot() {
		t.Error("one spin iteration changed the snapshot; dedup would diverge")
	}
	if a.OpIndex == b.OpIndex {
		t.Error("op indices should differ (history really did differ)")
	}
}

func TestRequestNewValue(t *testing.T) {
	set := Request{Op: mem.OpSyncRMW, RMW: RMWSet, Data: 7}
	if set.NewValue(3) != 7 {
		t.Error("RMWSet should write Data")
	}
	add := Request{Op: mem.OpSyncRMW, RMW: RMWAdd, Data: 7}
	if add.NewValue(3) != 10 {
		t.Error("RMWAdd should write old+Data")
	}
	w := Request{Op: mem.OpWrite, Data: 4}
	if w.NewValue(99) != 4 {
		t.Error("plain write should write Data")
	}
}

func TestTakeLocalWork(t *testing.T) {
	th := NewThread(Code{{Op: INop, Delay: 5}, {Op: INop, Delay: 2}, {Op: ILoad, Rd: 0, Addr: 0}})
	if _, ok, _ := th.Pending(); !ok {
		t.Fatal("should reach the load")
	}
	if d := th.TakeLocalWork(); d != 7 {
		t.Fatalf("TakeLocalWork = %d, want 7 (accumulated nops)", d)
	}
	if d := th.TakeLocalWork(); d != 0 {
		t.Fatalf("second TakeLocalWork = %d, want 0 (cleared)", d)
	}
}
