package program

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser mutated fragments of valid sources:
// whatever the input, Parse must return (result, nil) or (nil, error), never
// panic. A crash here would let a malformed .litmus file take down the CLIs.
func TestParseNeverPanics(t *testing.T) {
	seeds := []string{
		"name: x\ninit: a=1 b=2\nthread:\n    st a, 1\n    ld r0, b\nexists: 0:r0=0",
		"thread:\nl:\n    tas r1, s, 1\n    bne r1, 0, l\n    halt",
		"thread:\n    faa r2, c, 5\n    mov r3, -7\n    add r3, r3, r2",
		"init: x=0\nthread:\n    ld r0, x[r1]\n    st x[r1], 3",
		"exists: (0:r0=1 && [x]=2) || !1:r3=0",
	}
	rng := rand.New(rand.NewSource(5))
	mutate := func(s string) string {
		b := []byte(s)
		for k := 0; k < 1+rng.Intn(4); k++ {
			if len(b) == 0 {
				break
			}
			switch rng.Intn(4) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			case 1: // delete a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i+1)
				b = append(b[:i], b[j:]...)
			case 2: // duplicate a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i+1)
				b = append(b[:j], append(append([]byte(nil), b[i:j]...), b[j:]...)...)
			default: // insert noise
				i := rng.Intn(len(b) + 1)
				noise := []byte{',', ' ', '\n', ':', 'r', '9', '[', ']'}[rng.Intn(8)]
				b = append(b[:i], append([]byte{noise}, b[i:]...)...)
			}
		}
		return string(b)
	}
	run := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		res, err := Parse(src)
		if err == nil && res.Program != nil {
			// Whatever parsed must validate and survive the interpreter's
			// first step on every thread.
			if verr := res.Program.Validate(); verr != nil {
				t.Fatalf("parsed program fails validation: %v\nsource: %q", verr, src)
			}
		}
	}
	for _, s := range seeds {
		run(s)
		for i := 0; i < 400; i++ {
			run(mutate(s))
		}
	}
}

// TestParseCondNeverPanics does the same for the condition grammar.
func TestParseCondNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alphabet := `0123456789:r=[]()&|!xtrue /\-`
	for i := 0; i < 2000; i++ {
		n := rng.Intn(24)
		var b strings.Builder
		for k := 0; k < n; k++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseCond panicked on %q: %v", src, r)
				}
			}()
			_, _ = ParseCond(src, nil)
		}()
	}
}
