package program

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

func TestParseFullProgram(t *testing.T) {
	r, err := Parse(`
name: demo
init: x=0 y=5 z=-2
# producer
thread:
    mov r0, 7
    st x, r0
    sync.st y, 1
thread:
wait:
    sync.ld r1, y
    beq r1, 5, wait
    ld r2, x
    tas r3, z, 1
    faa r4, z, 2
    halt
exists: 1:r2=7 && [z]=3
`)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Program
	if p.Name != "demo" {
		t.Errorf("name = %q", p.Name)
	}
	if p.NumThreads() != 2 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
	// Addresses assigned in first-appearance order: x=0, y=1, z=2.
	if r.Names["x"] != 0 || r.Names["y"] != 1 || r.Names["z"] != 2 {
		t.Errorf("names = %v", r.Names)
	}
	if p.Init[0] != 0 || p.Init[1] != 5 || p.Init[2] != -2 {
		t.Errorf("init = %v", p.Init)
	}
	if r.Exists == nil {
		t.Fatal("exists missing")
	}
	// Branch target resolution: beq in thread 1 targets the label line.
	code := p.Threads[1]
	if code[1].Op != IBeq || code[1].Target != 0 {
		t.Errorf("branch = %+v", code[1])
	}
	if code[3].Op != ISyncRMW || code[3].RMW != RMWSet {
		t.Errorf("tas = %+v", code[3])
	}
	if code[4].Op != ISyncRMW || code[4].RMW != RMWAdd {
		t.Errorf("faa = %+v", code[4])
	}
}

func TestParseIndexedAddressing(t *testing.T) {
	r, err := Parse(`
name: idx
thread:
    mov r1, 3
    ld r0, arr[r1]
    st arr[r1], 9
`)
	if err != nil {
		t.Fatal(err)
	}
	code := r.Program.Threads[0]
	if !code[1].UseAddrReg || code[1].AddrReg != 1 {
		t.Errorf("indexed load = %+v", code[1])
	}
	if !code[2].UseAddrReg {
		t.Errorf("indexed store = %+v", code[2])
	}
}

func TestParseRejectsIndexedSync(t *testing.T) {
	for _, src := range []string{
		"thread:\n    sync.ld r0, a[r1]",
		"thread:\n    sync.st a[r1], 0",
		"thread:\n    tas r0, a[r1], 1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("indexed sync accepted: %s", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"outside thread", "ld r0, x", "outside any thread"},
		{"unknown instr", "thread:\n    frobnicate r0", "unknown instruction"},
		{"bad register", "thread:\n    mov r99, 0", "bad register"},
		{"bad operand count", "thread:\n    mov r0", "want 2 operands"},
		{"undefined label", "thread:\n    jmp nowhere", "undefined label"},
		{"bad init", "init: x\nthread:\n    halt", "bad init"},
		{"bad nop", "thread:\n    nop 0", "bad delay"},
		{"bad exists", "thread:\n    halt\nexists: 0:r0", "expected"},
		{"duplicate label", "thread:\nl:\nl:\n    halt", "duplicate label"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	r, err := Parse(`
name: c
thread:
    mov r0, 1   # trailing comment
    // whole-line comment
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Program.Threads[0]) != 2 {
		t.Errorf("instructions = %d, want 2", len(r.Program.Threads[0]))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("thread:\n    bogus")
}

func TestParsedProgramRoundTripsThroughInterpreter(t *testing.T) {
	r := MustParse(`
name: loop
init: out=0
thread:
    mov r0, 0
    mov r1, 0
top:
    add r1, r1, r0
    add r0, r0, 1
    blt r0, 5, top
    st out, r1
`)
	memory := map[mem.Addr]mem.Value{}
	th := NewThread(r.Program.Threads[0])
	for {
		req, ok, err := th.Pending()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		old := memory[req.Addr]
		if req.Op.Writes() {
			memory[req.Addr] = req.NewValue(old)
		}
		th.Resolve(old)
	}
	if memory[r.Names["out"]] != 10 {
		t.Errorf("sum = %d, want 10", memory[r.Names["out"]])
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: INop, Delay: 3}, "nop 3"},
		{Instr{Op: IMov, Rd: 1, Src: Imm(5)}, "mov r1, 5"},
		{Instr{Op: IAdd, Rd: 1, Ra: 2, Src: R(3)}, "add r1, r2, r3"},
		{Instr{Op: ILoad, Rd: 0, Addr: 7}, "ld r0, x7"},
		{Instr{Op: IStore, Addr: 7, Src: Imm(1)}, "st x7, 1"},
		{Instr{Op: ISyncRMW, Rd: 0, Addr: 2, Src: Imm(1), RMW: RMWSet}, "sync.rmw.set r0, x2, 1"},
		{Instr{Op: IBeq, Ra: 0, Src: Imm(0), Target: 4}, "beq r0, 0, @4"},
		{Instr{Op: IHalt}, "halt"},
		{Instr{Op: ILoad, Rd: 0, Addr: 1, AddrReg: 2, UseAddrReg: true}, "ld r0, x1+r2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramAddrs(t *testing.T) {
	r := MustParse(`
name: a
init: z=1
thread:
    ld r0, x
    st y, 1
`)
	addrs := r.Program.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatalf("addrs not sorted: %v", addrs)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Threads: []Code{{{Op: IBeq, Target: 5}}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch accepted")
	}
	p = &Program{Threads: []Code{{{Op: INop, Delay: 0}}}}
	if err := p.Validate(); err == nil {
		t.Error("zero-delay nop accepted")
	}
	p = &Program{Threads: []Code{{{Op: IMov, Rd: 20}}}}
	if err := p.Validate(); err == nil {
		t.Error("bad register accepted")
	}
}
