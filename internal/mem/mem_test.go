package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op         Op
		sync, r, w bool
		str        string
	}{
		{OpRead, false, true, false, "R"},
		{OpWrite, false, false, true, "W"},
		{OpSyncRead, true, true, false, "Sr"},
		{OpSyncWrite, true, false, true, "Sw"},
		{OpSyncRMW, true, true, true, "Srw"},
	}
	for _, c := range cases {
		if c.op.IsSync() != c.sync || c.op.Reads() != c.r || c.op.Writes() != c.w {
			t.Errorf("%s: classification wrong", c.op)
		}
		if c.op.String() != c.str {
			t.Errorf("%s: String() = %q, want %q", c.op, c.op.String(), c.str)
		}
		if !c.op.Valid() {
			t.Errorf("%s: should be valid", c.op)
		}
	}
	if Op(99).Valid() {
		t.Error("Op(99) should be invalid")
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("invalid op should print its number")
	}
}

func TestConflicts(t *testing.T) {
	// Definition 3: conflicting = same location, not both reads.
	// The address part is the caller's concern; at the Op level only the
	// not-both-reads part is decided.
	if Conflicts(OpRead, OpRead) {
		t.Error("two reads never conflict")
	}
	if Conflicts(OpRead, OpSyncRead) || Conflicts(OpSyncRead, OpSyncRead) {
		t.Error("read-only operations never conflict")
	}
	for _, w := range []Op{OpWrite, OpSyncWrite, OpSyncRMW} {
		if !Conflicts(OpRead, w) || !Conflicts(w, OpRead) || !Conflicts(w, w) {
			t.Errorf("%s should conflict with reads and itself", w)
		}
	}
}

func TestAccessConflictsWith(t *testing.T) {
	w0 := Access{Proc: 0, Op: OpWrite, Addr: 1, Value: 5}
	r1 := Access{Proc: 1, Op: OpRead, Addr: 1}
	rOther := Access{Proc: 1, Op: OpRead, Addr: 2}
	if !w0.ConflictsWith(r1) {
		t.Error("write/read same location must conflict")
	}
	if w0.ConflictsWith(rOther) {
		t.Error("different locations must not conflict")
	}
}

func TestConflictsSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		oa, ob := Op(a%5), Op(b%5)
		return Conflicts(oa, ob) == Conflicts(ob, oa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessString(t *testing.T) {
	cases := []struct {
		a    Access
		want string
	}{
		{Access{Proc: 1, Op: OpWrite, Addr: 3, Value: 5}, "P1:W(x3)=5"},
		{Access{Proc: 0, Op: OpRead, Addr: 2, Value: 7}, "P0:R(x2)->7"},
		{Access{Proc: 2, Op: OpSyncRMW, Addr: 0, Value: 0, WValue: 1}, "P2:Srw(x0)=0/w1"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
