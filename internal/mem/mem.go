// Package mem defines the primitive vocabulary shared by every layer of the
// weak-ordering reproduction: addresses, values, processors, the taxonomy of
// memory operations used by Adve & Hill's DRF0 model (data reads and writes,
// and hardware-recognizable synchronization operations that may read, write,
// or atomically read-modify-write a single location), and the conflict
// predicate from Definition 3 ("two accesses conflict if they access the same
// location and they are not both reads").
package mem

import "fmt"

// Addr identifies a single memory location. The paper's DRF0 requires every
// synchronization operation to access exactly one location, so an Addr is the
// unit of synchronization as well as of data.
type Addr uint32

// Value is the contents of one memory location. All simulated memories are
// word-addressed; there is no sub-word access in the model.
type Value int64

// ProcID names a processor. Processors are numbered 0..N-1.
type ProcID int

// Op classifies a memory operation. The taxonomy follows Sections 4-6 of the
// paper: ordinary (data) reads and writes, plus three flavors of
// synchronization operation. Section 6 motivates distinguishing sync
// operations that only read (Test), only write (Unset), and both read and
// write (TestAndSet): the DRF1-style refinement exploits exactly this split.
type Op uint8

const (
	// OpRead is an ordinary data read.
	OpRead Op = iota
	// OpWrite is an ordinary data write.
	OpWrite
	// OpSyncRead is a read-only synchronization operation (e.g. the Test of
	// a Test-and-TestAndSet spin loop).
	OpSyncRead
	// OpSyncWrite is a write-only synchronization operation (e.g. Unset).
	OpSyncWrite
	// OpSyncRMW is an atomic read-modify-write synchronization operation
	// (e.g. TestAndSet). Its read and write components commit and perform
	// together with respect to other synchronization on the same location.
	OpSyncRMW
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpSyncRead:
		return "Sr"
	case OpSyncWrite:
		return "Sw"
	case OpSyncRMW:
		return "Srw"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsSync reports whether the operation is a synchronization operation, i.e.
// one that is recognizable by the hardware as ordering-relevant (DRF0
// restriction 1).
func (o Op) IsSync() bool {
	return o == OpSyncRead || o == OpSyncWrite || o == OpSyncRMW
}

// Reads reports whether the operation has a read component.
func (o Op) Reads() bool {
	return o == OpRead || o == OpSyncRead || o == OpSyncRMW
}

// Writes reports whether the operation has a write component.
func (o Op) Writes() bool {
	return o == OpWrite || o == OpSyncWrite || o == OpSyncRMW
}

// Valid reports whether o is one of the defined operation kinds.
func (o Op) Valid() bool { return o <= OpSyncRMW }

// Conflicts implements the paper's conflict predicate: two operations
// conflict if they access the same location and they are not both reads.
// (Definition 3 applies it to accesses; the address check is done by the
// caller since Op carries no address.)
func Conflicts(a, b Op) bool {
	return a.Writes() || b.Writes()
}

// Access is one dynamic memory access: an operation by a processor on an
// address. Value carries the written value for writes and the returned value
// for reads once an execution has bound it; for OpSyncRMW, WValue is the
// value written while Value is the value read.
type Access struct {
	Proc  ProcID
	Op    Op
	Addr  Addr
	Value Value // value read (reads, RMW read component) or written (writes)

	// WValue is the value written by the write component of an OpSyncRMW.
	// It is ignored for every other operation kind.
	WValue Value
}

// IsSync reports whether the access is a synchronization access.
func (a Access) IsSync() bool { return a.Op.IsSync() }

// ConflictsWith reports whether a and b are conflicting accesses per
// Definition 3: same location, not both reads.
func (a Access) ConflictsWith(b Access) bool {
	return a.Addr == b.Addr && Conflicts(a.Op, b.Op)
}

// String implements fmt.Stringer, printing e.g. "P1:W(x3)=5".
func (a Access) String() string {
	switch {
	case a.Op == OpSyncRMW:
		return fmt.Sprintf("P%d:%s(x%d)=%d/w%d", a.Proc, a.Op, a.Addr, a.Value, a.WValue)
	case a.Op.Writes():
		return fmt.Sprintf("P%d:%s(x%d)=%d", a.Proc, a.Op, a.Addr, a.Value)
	default:
		return fmt.Sprintf("P%d:%s(x%d)->%d", a.Proc, a.Op, a.Addr, a.Value)
	}
}
