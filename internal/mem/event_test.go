package mem

import (
	"strings"
	"testing"
)

func TestExecutionAppendIndices(t *testing.T) {
	e := NewExecution(2)
	e.Append(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1})
	e.Append(Access{Proc: 1, Op: OpWrite, Addr: 1, Value: 2})
	e.Append(Access{Proc: 0, Op: OpRead, Addr: 1, Value: 2})
	if e.Len() != 3 {
		t.Fatalf("len = %d", e.Len())
	}
	if e.Event(0).Index != 0 || e.Event(2).Index != 1 || e.Event(1).Index != 0 {
		t.Error("program-order indices wrong")
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	byProc := e.ByProc()
	if len(byProc[0]) != 2 || len(byProc[1]) != 1 {
		t.Error("ByProc grouping wrong")
	}
}

func TestAppendAtOutOfOrderCompletion(t *testing.T) {
	// A write completes after a program-later read (write-buffer behavior).
	e := NewExecution(1)
	e.AppendAt(Access{Proc: 0, Op: OpRead, Addr: 1, Value: 0}, 1)  // completes first
	e.AppendAt(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1}, 0) // completes second
	if err := e.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	ids := e.ByProc()[0]
	if e.Event(ids[0]).Op != OpWrite {
		t.Error("ByProc should order by program index, not completion")
	}
	if e.Completed[0] != 0 || e.Event(e.Completed[0]).Op != OpRead {
		t.Error("completion order should be append order")
	}
}

func TestValidateCatchesSparseIndices(t *testing.T) {
	e := NewExecution(1)
	e.AppendAt(Access{Proc: 0, Op: OpRead, Addr: 0}, 2) // index 2 with no 0,1
	if err := e.Validate(); err == nil {
		t.Fatal("sparse indices accepted")
	}
}

func TestValidateCatchesBadCompleted(t *testing.T) {
	e := NewExecution(1)
	e.Append(Access{Proc: 0, Op: OpRead, Addr: 0})
	e.Completed = []EventID{0, 0}
	if err := e.Validate(); err == nil {
		t.Fatal("duplicated completion entries accepted")
	}
	e.Completed = []EventID{5}
	if err := e.Validate(); err == nil {
		t.Fatal("out-of-range completion entry accepted")
	}
}

func TestValidateCatchesBadOp(t *testing.T) {
	e := NewExecution(1)
	e.Append(Access{Proc: 0, Op: Op(99), Addr: 0})
	if err := e.Validate(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestFinalState(t *testing.T) {
	e := NewExecution(2)
	e.Append(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1})
	e.Append(Access{Proc: 1, Op: OpWrite, Addr: 0, Value: 2})
	e.Append(Access{Proc: 0, Op: OpSyncRMW, Addr: 1, Value: 0, WValue: 9})
	fs := e.FinalState()
	if fs[0] != 2 {
		t.Errorf("final x0 = %d, want 2 (last completed write)", fs[0])
	}
	if fs[1] != 9 {
		t.Errorf("final x1 = %d, want 9 (RMW writes WValue)", fs[1])
	}
}

func TestResultOfAndEqual(t *testing.T) {
	e := NewExecution(2)
	e.Append(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1})
	e.Append(Access{Proc: 1, Op: OpRead, Addr: 0, Value: 1})
	r := ResultOf(e)
	if len(r.Reads) != 1 {
		t.Fatalf("reads = %d", len(r.Reads))
	}
	if r.Reads[ReadKey{Proc: 1, Index: 0}] != 1 {
		t.Error("read value missing from result")
	}
	if r.Final[0] != 1 {
		t.Error("final state missing from result")
	}
	if !r.Equal(ResultOf(e)) {
		t.Error("result should equal itself")
	}
	// A different read value breaks equality and the key.
	e2 := NewExecution(2)
	e2.Append(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1})
	e2.Append(Access{Proc: 1, Op: OpRead, Addr: 0, Value: 0})
	r2 := ResultOf(e2)
	if r.Equal(r2) || r.Key() == r2.Key() {
		t.Error("different reads should differ")
	}
}

func TestResultEqualDifferentShapes(t *testing.T) {
	a := Result{Reads: map[ReadKey]Value{{0, 0}: 1}, Final: map[Addr]Value{}}
	b := Result{Reads: map[ReadKey]Value{}, Final: map[Addr]Value{}}
	if a.Equal(b) || b.Equal(a) {
		t.Error("different read-set sizes should not be equal")
	}
	c := Result{Reads: map[ReadKey]Value{{0, 0}: 1}, Final: map[Addr]Value{1: 1}}
	if a.Equal(c) {
		t.Error("different finals should not be equal")
	}
}

func TestExecutionString(t *testing.T) {
	e := NewExecution(1)
	e.Append(Access{Proc: 0, Op: OpWrite, Addr: 0, Value: 1})
	if s := e.String(); !strings.Contains(s, "P0:W(x0)=1") {
		t.Errorf("String() = %q", s)
	}
}

func TestAppendGrowsNumProcs(t *testing.T) {
	e := NewExecution(1)
	e.Append(Access{Proc: 4, Op: OpRead, Addr: 0})
	if e.NumProcs != 5 {
		t.Errorf("NumProcs = %d, want 5", e.NumProcs)
	}
}
