package mem

import (
	"fmt"
	"sort"
	"strings"
)

// EventID identifies one event within an execution. IDs are dense and
// allocated in the order events are appended to an Execution.
type EventID int

// NoEvent is the sentinel for "no event" (e.g. a read with no visible write).
const NoEvent EventID = -1

// Event is one completed memory access inside a recorded execution, tagged
// with its position in its processor's program order. Events are the nodes of
// the happens-before relation in internal/core.
type Event struct {
	ID    EventID
	Index int // position in issuing processor's program order (0-based)
	Access
}

// Execution is a recorded execution: a set of events plus, for executions on
// the idealized architecture, the total completion order in which they
// executed (Completed[i] gives the i-th completed event ID). For executions
// on real (non-idealized) machines Completed may hold the commit order, or be
// nil when no total order is meaningful.
type Execution struct {
	Events    []Event
	Completed []EventID
	NumProcs  int
}

// NewExecution returns an empty execution for n processors.
func NewExecution(n int) *Execution {
	return &Execution{NumProcs: n}
}

// Append adds an access as the next event of its processor (program-order
// index one past the processor's current maximum), records it in the
// completion order, and returns its ID. Use AppendAt when completion order
// and program order diverge.
func (e *Execution) Append(a Access) EventID {
	idx := 0
	for i := len(e.Events) - 1; i >= 0; i-- {
		if e.Events[i].Proc == a.Proc {
			idx = e.Events[i].Index + 1
			break
		}
	}
	return e.AppendAt(a, idx)
}

// AppendAt adds an access with an explicit program-order index, recording its
// completion position as the current end of the trace. Relaxed machines use
// this when an operation completes out of program order.
func (e *Execution) AppendAt(a Access, index int) EventID {
	if int(a.Proc) >= e.NumProcs {
		e.NumProcs = int(a.Proc) + 1
	}
	id := EventID(len(e.Events))
	e.Events = append(e.Events, Event{ID: id, Index: index, Access: a})
	e.Completed = append(e.Completed, id)
	return id
}

// ByProc returns the event IDs of each processor in program order.
func (e *Execution) ByProc() [][]EventID {
	out := make([][]EventID, e.NumProcs)
	for _, ev := range e.Events {
		out[ev.Proc] = append(out[ev.Proc], ev.ID)
	}
	for _, ids := range out {
		sort.Slice(ids, func(i, j int) bool {
			return e.Events[ids[i]].Index < e.Events[ids[j]].Index
		})
	}
	return out
}

// Event returns the event with the given ID.
func (e *Execution) Event(id EventID) Event { return e.Events[id] }

// Len returns the number of events.
func (e *Execution) Len() int { return len(e.Events) }

// Validate checks structural invariants: per-processor indices are dense and
// start at zero, Completed (when present) is a permutation of event IDs, and
// every Op is a defined kind. It returns a descriptive error on the first
// violation found.
func (e *Execution) Validate() error {
	next := make(map[ProcID]int)
	for _, ev := range e.Events {
		if !ev.Op.Valid() {
			return fmt.Errorf("event %d: invalid op %d", ev.ID, ev.Op)
		}
		if int(ev.Proc) < 0 || int(ev.Proc) >= e.NumProcs {
			return fmt.Errorf("event %d: processor P%d out of range [0,%d)", ev.ID, ev.Proc, e.NumProcs)
		}
	}
	// Indices dense per processor, checked in ID order of appearance.
	perProc := make(map[ProcID][]Event)
	for _, ev := range e.Events {
		perProc[ev.Proc] = append(perProc[ev.Proc], ev)
	}
	for p, evs := range perProc {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Index < evs[j].Index })
		for i, ev := range evs {
			if ev.Index != i {
				return fmt.Errorf("P%d: program-order indices not dense at event %d (index %d, want %d)", p, ev.ID, ev.Index, i)
			}
		}
		next[p] = len(evs)
	}
	if e.Completed != nil {
		if len(e.Completed) != len(e.Events) {
			return fmt.Errorf("completion order has %d entries for %d events", len(e.Completed), len(e.Events))
		}
		seen := make([]bool, len(e.Events))
		for _, id := range e.Completed {
			if id < 0 || int(id) >= len(e.Events) {
				return fmt.Errorf("completion order references unknown event %d", id)
			}
			if seen[id] {
				return fmt.Errorf("completion order repeats event %d", id)
			}
			seen[id] = true
		}
	}
	return nil
}

// FinalState returns the final value of every location, taking the last write
// in completion order (or event order when Completed is nil).
func (e *Execution) FinalState() map[Addr]Value {
	out := make(map[Addr]Value)
	order := e.Completed
	if order == nil {
		order = make([]EventID, len(e.Events))
		for i := range e.Events {
			order[i] = EventID(i)
		}
	}
	for _, id := range order {
		ev := e.Events[id]
		if ev.Op.Writes() {
			v := ev.Value
			if ev.Op == OpSyncRMW {
				v = ev.WValue
			}
			out[ev.Addr] = v
		}
	}
	return out
}

// String renders the execution one event per line in completion order.
func (e *Execution) String() string {
	var b strings.Builder
	order := e.Completed
	if order == nil {
		order = make([]EventID, len(e.Events))
		for i := range e.Events {
			order[i] = EventID(i)
		}
	}
	for _, id := range order {
		fmt.Fprintf(&b, "%3d: %s\n", id, e.Events[id].Access)
	}
	return b.String()
}

// Result is the paper's notion of the result of an execution: "the union of
// the values returned by all the read operations in the execution and the
// final state of memory". Two executions of the same program are equivalent
// iff their Results are equal.
type Result struct {
	// Reads maps (proc, program-order index) to the value returned. Only
	// operations with a read component appear.
	Reads map[ReadKey]Value
	// Final is the final state of memory.
	Final map[Addr]Value
}

// ReadKey locates a dynamic read by processor and program-order index.
type ReadKey struct {
	Proc  ProcID
	Index int
}

// ResultOf extracts the Result of an execution.
func ResultOf(e *Execution) Result {
	r := Result{Reads: make(map[ReadKey]Value), Final: e.FinalState()}
	for _, ev := range e.Events {
		if ev.Op.Reads() {
			r.Reads[ReadKey{ev.Proc, ev.Index}] = ev.Value
		}
	}
	return r
}

// Equal reports whether two results are identical.
func (r Result) Equal(o Result) bool {
	if len(r.Reads) != len(o.Reads) || len(r.Final) != len(o.Final) {
		return false
	}
	for k, v := range r.Reads {
		if ov, ok := o.Reads[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range r.Final {
		if ov, ok := o.Final[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the result, usable as a map key when
// collecting the set of distinct results of a program.
func (r Result) Key() string {
	type rk struct {
		k ReadKey
		v Value
	}
	rs := make([]rk, 0, len(r.Reads))
	for k, v := range r.Reads {
		rs = append(rs, rk{k, v})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].k.Proc != rs[j].k.Proc {
			return rs[i].k.Proc < rs[j].k.Proc
		}
		return rs[i].k.Index < rs[j].k.Index
	})
	type fk struct {
		a Addr
		v Value
	}
	fs := make([]fk, 0, len(r.Final))
	for a, v := range r.Final {
		fs = append(fs, fk{a, v})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].a < fs[j].a })
	var b strings.Builder
	for _, x := range rs {
		fmt.Fprintf(&b, "P%d.%d=%d;", x.k.Proc, x.k.Index, x.v)
	}
	b.WriteByte('|')
	for _, x := range fs {
		fmt.Fprintf(&b, "x%d=%d;", x.a, x.v)
	}
	return b.String()
}
