// Package stats provides the counters and fixed-width table rendering used by
// the experiment harness to print paper-style result tables.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is an ordered bag of named integer counters.
type Counters struct {
	names []string
	cells map[string]*int64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters {
	return &Counters{cells: make(map[string]*int64)}
}

// cell returns the named counter's storage, registering it on first use.
func (c *Counters) cell(name string) *int64 {
	p, ok := c.cells[name]
	if !ok {
		p = new(int64)
		c.cells[name] = p
		c.names = append(c.names, name)
	}
	return p
}

// Add increments a counter, registering it on first use.
func (c *Counters) Add(name string, delta int64) { *c.cell(name) += delta }

// Counter returns a stable pointer to the named counter's cell, registering
// the name on first use. It is the same storage Add and Get observe: hot
// paths resolve the handle once and increment through it, skipping the
// per-Add string-map lookup.
func (c *Counters) Counter(name string) *int64 { return c.cell(name) }

// Get returns a counter's value (zero when never touched).
func (c *Counters) Get(name string) int64 {
	if p, ok := c.cells[name]; ok {
		return *p
	}
	return 0
}

// Hot is a lazily resolved counter handle for hot paths. The first Add goes
// through Counters.Counter, so the name registers at the same program point
// it always did (first touch), keeping registration order and the
// only-touched-counters-render property intact; later Adds are a plain
// pointer increment with no string-map lookup. A Hot is bound to whichever
// bag its first Add used and must not be shared across bags.
type Hot struct{ p *int64 }

// Add increments the named counter of c, resolving the handle on first use.
func (h *Hot) Add(c *Counters, name string, delta int64) {
	if h.p == nil {
		h.p = c.Counter(name)
	}
	*h.p += delta
}

// Names returns the counters in registration order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Merge adds every counter of o into c and pins the merged Names() order as
// an ordered union: names already registered in c keep their positions, and
// each name new to c is inserted immediately before the next name of o that c
// already holds (at the end when no such name follows). The merged order is a
// deterministic function of the two name sequences — in particular, a
// receiver missing some of o's names in interleaved order ends up with o's
// relative order restored, which per-worker metric merging relies on.
func (c *Counters) Merge(o *Counters) {
	// Walk o backwards: insertAt tracks where a missing name must go to sit
	// just before the nearest following name that c already has (or had
	// inserted); repeated inserts at the same index keep o's relative order.
	insertAt := len(c.names)
	for i := len(o.names) - 1; i >= 0; i-- {
		n := o.names[i]
		if at, ok := c.indexOf(n); ok {
			insertAt = at
			*c.cells[n] += *o.cells[n]
			continue
		}
		c.names = append(c.names, "")
		copy(c.names[insertAt+1:], c.names[insertAt:])
		c.names[insertAt] = n
		v := *o.cells[n]
		c.cells[n] = &v
	}
}

// indexOf returns the position of a registered name.
func (c *Counters) indexOf(name string) (int, bool) {
	for i, n := range c.names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Snapshot returns a sorted copy of the values, for deterministic printing.
func (c *Counters) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(c.cells))
	for k, v := range c.cells {
		m[k] = *v
	}
	return m
}

// String implements fmt.Stringer.
func (c *Counters) String() string {
	names := c.Names()
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, *c.cells[n])
	}
	return strings.Join(parts, " ")
}

// Table accumulates rows of cells and renders them with aligned columns, in
// the style of a paper's result tables.
type Table struct {
	Title  string
	header []string
	rows   [][]string
	notes  []string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note appends a footnote line rendered under the table.
func (t *Table) Note(format string, args ...any) *Table {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Histogram is a power-of-two-bucketed distribution of non-negative integer
// samples (durations in cycles, queue depths). Bucket k counts samples in
// [2^(k-1), 2^k) with bucket 0 holding exact zeros; rendering is deterministic,
// so histograms can appear in golden tables.
type Histogram struct {
	buckets []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a sample to its bucket index: 0 for v <= 0, else
// 1 + floor(log2(v)).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// Observe adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max return the sample extremes (0 for an empty histogram).
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the sample mean (0 for empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// String renders the non-empty buckets deterministically:
// "n=3 sum=12 [0]:1 [2,4):1 [8,16):1".
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d sum=%d", h.count, h.sum)
	for k, n := range h.buckets {
		if n == 0 {
			continue
		}
		if k == 0 {
			fmt.Fprintf(&b, " [0]:%d", n)
		} else {
			fmt.Fprintf(&b, " [%d,%d):%d", int64(1)<<(k-1), int64(1)<<k, n)
		}
	}
	return b.String()
}

// Ratio formats a/b as a speedup string ("1.73x"), guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Summary holds simple distribution statistics over a sample.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Sum  float64
	sumq float64
}

// Observe adds a sample.
func (s *Summary) Observe(x float64) {
	if s.N == 0 || x < s.Min {
		s.Min = x
	}
	if s.N == 0 || x > s.Max {
		s.Max = x
	}
	s.N++
	s.Sum += x
	s.sumq += x * x
}

// Mean returns the sample mean (0 for empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Var returns the population variance (0 for fewer than two samples).
func (s *Summary) Var() float64 {
	if s.N < 2 {
		return 0
	}
	m := s.Mean()
	return s.sumq/float64(s.N) - m*m
}

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f max=%.2f", s.N, s.Mean(), s.Min, s.Max)
}
