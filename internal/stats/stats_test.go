package stats

import (
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("hits", 3)
	c.Add("misses", 1)
	c.Add("hits", 2)
	if c.Get("hits") != 5 || c.Get("misses") != 1 {
		t.Fatalf("values: %s", c)
	}
	if c.Get("absent") != 0 {
		t.Error("absent counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Errorf("registration order lost: %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	b := NewCounters()
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merge wrong: %s", a)
	}
}

func TestCountersSnapshotAndString(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	snap := c.Snapshot()
	if len(snap) != 2 || snap["a"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if c.String() != "a=1 b=2" {
		t.Errorf("string = %q (should sort)", c.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.Row("alpha", 1)
	tbl.Row("b", 22.5)
	tbl.Note("a note with %d", 7)
	out := tbl.String()
	for _, want := range []string{"demo", "name", "alpha", "22.50", "note: a note with 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line starts with the padded first column.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "b    ") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestTableExtraCells(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.Row("x", "overflow")
	if !strings.Contains(tbl.String(), "overflow") {
		t.Error("rows wider than the header should still render")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Errorf("ratio by zero = %s", Ratio(1, 0))
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 6} {
		s.Observe(x)
	}
	if s.N != 3 || s.Min != 2 || s.Max != 6 {
		t.Errorf("summary = %s", &s)
	}
	if s.Mean() != 4 {
		t.Errorf("mean = %f", s.Mean())
	}
	if v := s.Var(); v < 2.6 || v > 2.7 {
		t.Errorf("var = %f, want ~2.67", v)
	}
	var empty Summary
	if empty.Mean() != 0 || empty.Var() != 0 {
		t.Error("empty summary should read zeros")
	}
}
