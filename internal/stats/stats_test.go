package stats

import (
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("hits", 3)
	c.Add("misses", 1)
	c.Add("hits", 2)
	if c.Get("hits") != 5 || c.Get("misses") != 1 {
		t.Fatalf("values: %s", c)
	}
	if c.Get("absent") != 0 {
		t.Error("absent counter should read 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Errorf("registration order lost: %v", names)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("x", 1)
	b := NewCounters()
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 {
		t.Errorf("merge wrong: %s", a)
	}
}

// TestCountersMergeOrder pins Merge's Names() order: an ordered union where
// names new to the receiver slot in right after the last shared name that
// precedes them in the merged-in bag. The interleaved case is the regression:
// the old append-at-end behaviour produced [a c b d], leaking the receiver's
// (worker-dependent) registration history into the merged order.
func TestCountersMergeOrder(t *testing.T) {
	build := func(names ...string) *Counters {
		c := NewCounters()
		for i, n := range names {
			c.Add(n, int64(i+1))
		}
		return c
	}
	cases := []struct {
		name string
		recv []string
		in   []string
		want []string
	}{
		{"interleaved-missing", []string{"a", "c"}, []string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"}},
		{"empty-receiver", nil, []string{"m", "k"}, []string{"m", "k"}},
		{"empty-input", []string{"a", "b"}, nil, []string{"a", "b"}},
		{"disjoint", []string{"a"}, []string{"b", "c"}, []string{"a", "b", "c"}},
		{"all-shared", []string{"a", "b"}, []string{"b", "a"}, []string{"a", "b"}},
		{"leading-missing", []string{"c"}, []string{"a", "b", "c"}, []string{"a", "b", "c"}},
		{"trailing-missing", []string{"a"}, []string{"a", "b", "c"}, []string{"a", "b", "c"}},
		{"receiver-extra-kept", []string{"z", "a"}, []string{"a", "b"}, []string{"z", "a", "b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recv := build(tc.recv...)
			recv.Merge(build(tc.in...))
			got := recv.Names()
			if len(got) != len(tc.want) {
				t.Fatalf("Names() = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Names() = %v, want %v", got, tc.want)
				}
			}
			// Values survive: shared names summed, new names copied.
			for _, n := range tc.want {
				if recv.Get(n) == 0 {
					t.Errorf("merged counter %q reads 0", n)
				}
			}
		})
	}
}

// TestCountersMergeWorkerOrderIndependent is the property the tentpole's
// per-worker metric merging needs: merging the same per-worker bags into a
// fresh aggregate yields the same Names() order even when the workers
// registered a shared schema at different points of their private histories.
func TestCountersMergeWorkerOrderIndependent(t *testing.T) {
	w1 := NewCounters()
	for _, n := range []string{"compute", "idle", "reserve"} {
		w1.Add(n, 1)
	}
	w2 := NewCounters()
	for _, n := range []string{"compute", "backoff", "idle", "reserve"} {
		w2.Add(n, 1)
	}
	agg1 := NewCounters()
	agg1.Merge(w1)
	agg1.Merge(w2)
	agg2 := NewCounters()
	agg2.Merge(w2)
	agg2.Merge(w1)
	n1, n2 := agg1.Names(), agg2.Names()
	if len(n1) != len(n2) {
		t.Fatalf("orders diverge: %v vs %v", n1, n2)
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("orders diverge: %v vs %v", n1, n2)
		}
	}
	if agg1.Get("compute") != 2 || agg1.Get("backoff") != 1 {
		t.Errorf("merged values wrong: %s", agg1)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.String() != "n=0 sum=0" {
		t.Errorf("empty histogram = %q", h.String())
	}
	for _, v := range []int64{0, 1, 3, 3, 9, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 16 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 9 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	want := "n=6 sum=16 [0]:2 [1,2):1 [2,4):2 [8,16):1"
	if h.String() != want {
		t.Errorf("histogram = %q, want %q", h.String(), want)
	}
	if m := h.Mean(); m < 2.66 || m > 2.67 {
		t.Errorf("mean = %f", m)
	}
}

func TestCountersSnapshotAndString(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	snap := c.Snapshot()
	if len(snap) != 2 || snap["a"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if c.String() != "a=1 b=2" {
		t.Errorf("string = %q (should sort)", c.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.Row("alpha", 1)
	tbl.Row("b", 22.5)
	tbl.Note("a note with %d", 7)
	out := tbl.String()
	for _, want := range []string{"demo", "name", "alpha", "22.50", "note: a note with 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line starts with the padded first column.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "b    ") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestTableExtraCells(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.Row("x", "overflow")
	if !strings.Contains(tbl.String(), "overflow") {
		t.Error("rows wider than the header should still render")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Errorf("ratio by zero = %s", Ratio(1, 0))
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 6} {
		s.Observe(x)
	}
	if s.N != 3 || s.Min != 2 || s.Max != 6 {
		t.Errorf("summary = %s", &s)
	}
	if s.Mean() != 4 {
		t.Errorf("mean = %f", s.Mean())
	}
	if v := s.Var(); v < 2.6 || v > 2.7 {
		t.Errorf("var = %f, want ~2.67", v)
	}
	var empty Summary
	if empty.Mean() != 0 || empty.Var() != 0 {
		t.Error("empty summary should read zeros")
	}
}
