package axiomatic

// digraph is a tiny dense digraph used for the acyclicity checks. An edge
// u -> v asserts the strict timing fact t(u) < t(v); a witness exists for a
// constraint set iff the graph is acyclic, because any finite strict partial
// order extends to a linear order over dense time.
type digraph struct {
	n   int
	adj [][]int32
}

func newDigraph(n int) *digraph { return &digraph{n: n, adj: make([][]int32, n)} }

// edge adds the constraint t(u) < t(v).
func (g *digraph) edge(u, v int) { g.adj[u] = append(g.adj[u], int32(v)) }

// acyclic reports whether the constraint set is satisfiable, via iterative
// three-color DFS (self-loops — contradictions t(u) < t(u) — count as cycles).
func (g *digraph) acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, g.n)
	type frame struct {
		node int
		next int
	}
	var stack []frame
	for start := 0; start < g.n; start++ {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				next := int(g.adj[f.node][f.next])
				f.next++
				switch color[next] {
				case gray:
					return false
				case white:
					color[next] = gray
					stack = append(stack, frame{node: next})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
