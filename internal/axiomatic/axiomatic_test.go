package axiomatic

import (
	"errors"
	"sort"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// shapes returns the classic litmus shapes the per-model admitted sets are
// cross-checked on, shape by shape, against the operational machines.
func shapes() []*program.Program {
	var out []*program.Program
	add := func(name string, build func(b *program.Builder)) {
		b := program.NewBuilder(name)
		build(b)
		out = append(out, b.MustBuild())
	}
	add("sb", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Load(0, 1)
		b.Thread()
		b.Store(1, program.Imm(1))
		b.Load(1, 0)
	})
	add("mp-data", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Store(1, program.Imm(1))
		b.Thread()
		b.Load(0, 1)
		b.Load(1, 0)
	})
	add("mp-release", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.SyncStore(1, program.Imm(1))
		b.Thread()
		b.Load(0, 1)
		b.Load(1, 0)
	})
	add("mp-sync", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.SyncStore(1, program.Imm(1))
		b.Thread()
		b.SyncLoad(0, 1)
		b.Load(1, 0)
	})
	add("corr", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Store(0, program.Imm(2))
		b.Thread()
		b.Load(0, 0)
		b.Load(1, 0)
	})
	add("2+2w", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Store(1, program.Imm(2))
		b.Thread()
		b.Store(1, program.Imm(1))
		b.Store(0, program.Imm(2))
	})
	add("iriw", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Thread()
		b.Store(1, program.Imm(1))
		b.Thread()
		b.Load(0, 0)
		b.Load(1, 1)
		b.Thread()
		b.Load(0, 1)
		b.Load(1, 0)
	})
	add("wrc", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.Thread()
		b.Load(0, 0)
		b.Store(1, program.Imm(1))
		b.Thread()
		b.Load(0, 1)
		b.Load(1, 0)
	})
	add("tas-pair", func(b *program.Builder) {
		b.Thread()
		b.TestAndSet(0, 2, program.Imm(1))
		b.Store(0, program.Imm(1))
		b.Thread()
		b.TestAndSet(0, 2, program.Imm(1))
		b.Load(1, 0)
	})
	add("faa-race", func(b *program.Builder) {
		b.Thread()
		b.FetchAdd(0, 0, program.Imm(1))
		b.Thread()
		b.Store(0, program.Imm(5))
		b.Load(0, 0)
	})
	add("sync-handoff", func(b *program.Builder) {
		b.Thread()
		b.Store(0, program.Imm(1))
		b.SyncStore(1, program.Imm(1))
		b.Thread()
		b.SyncLoad(0, 1)
		b.SyncLoad(1, 1)
		b.Load(2, 0)
	})
	return out
}

func operational(sys System, p *program.Program) model.Machine {
	switch sys {
	case SysSC:
		return model.NewSC(p)
	case SysTSO:
		return model.NewTSO(p)
	case SysPSO:
		return model.NewPSO(p)
	case SysRMO:
		return model.NewRMO(p)
	case SysWODef1:
		return model.NewWODef1(p)
	case SysWODef2:
		return model.NewWODef2(p)
	}
	return nil
}

func sortedKeys(m map[string]mem.Result) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestAdmittedMatchesMachines is the shape-level differential check: on every
// classic litmus shape and every system, the axiomatic admitted set equals
// the operational machine's outcome set exactly.
func TestAdmittedMatchesMachines(t *testing.T) {
	for _, p := range shapes() {
		for _, sys := range Systems() {
			got, err := Admitted(p, sys)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, sys, err)
			}
			x := &model.Explorer{}
			want, _, err := x.Outcomes(operational(sys, p))
			if err != nil {
				t.Fatalf("%s/%s operational: %v", p.Name, sys, err)
			}
			for k := range want {
				if _, ok := got[k]; !ok {
					t.Errorf("%s/%s: machine outcome not admitted axiomatically:\n  %s",
						p.Name, sys, k)
				}
			}
			for k := range got {
				if _, ok := want[k]; !ok {
					t.Errorf("%s/%s: axiomatic outcome never produced by the machine:\n  %s",
						p.Name, sys, k)
				}
			}
			if t.Failed() {
				t.Logf("%s/%s: admitted %d, operational %d", p.Name, sys, len(got), len(want))
			}
		}
	}
}

// TestKnownOutcomeCounts pins a few canonical cardinalities so a future
// regression that breaks both sides symmetrically still trips something.
func TestKnownOutcomeCounts(t *testing.T) {
	sb := shapes()[0]
	cases := []struct {
		sys  System
		want int
	}{
		{SysSC, 3},      // both-zero forbidden
		{SysTSO, 4},     // store buffering admits both-zero
		{SysPSO, 4},
		{SysRMO, 4},
		{SysWODef1, 4},  // data accesses are unordered between syncs
		{SysWODef2, 4},
	}
	for _, c := range cases {
		got, err := Admitted(sb, c.sys)
		if err != nil {
			t.Fatalf("%s: %v", c.sys, err)
		}
		if len(got) != c.want {
			t.Errorf("%s on sb: %d outcomes, want %d: %v", c.sys, len(got), c.want, sortedKeys(got))
		}
	}
}

func TestSupportsRejections(t *testing.T) {
	loop := program.NewBuilder("loop")
	loop.Thread()
	loop.Label("spin")
	loop.TestAndSet(0, 0, program.Imm(1))
	loop.Bne(0, program.Imm(0), "spin")
	if err := Supports(loop.MustBuild()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("loop: got %v, want ErrUnsupported", err)
	}

	idx := &program.Program{Threads: []program.Code{{
		{Op: program.ILoad, Rd: 0, Addr: 0, AddrReg: 1, UseAddrReg: true},
	}}}
	if err := Supports(idx); !errors.Is(err, ErrUnsupported) {
		t.Errorf("indexed: got %v, want ErrUnsupported", err)
	}

	wide := program.NewBuilder("wide")
	wide.Thread()
	for i := 0; i < maxDataWritesPerT+1; i++ {
		wide.Store(0, program.Imm(mem.Value(i)))
	}
	if err := Supports(wide.MustBuild()); !errors.Is(err, ErrUnsupported) {
		t.Errorf("9 stores: got %v, want ErrUnsupported", err)
	}

	fwd := program.NewBuilder("forward")
	fwd.Thread()
	fwd.Load(0, 0)
	fwd.Beq(0, program.Imm(0), "done")
	fwd.Store(1, program.Imm(1))
	fwd.Label("done")
	fwd.Halt()
	if err := Supports(fwd.MustBuild()); err != nil {
		t.Errorf("forward branch: unexpected %v", err)
	}
}
