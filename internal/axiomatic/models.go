package axiomatic

import (
	"fmt"

	"weakorder/internal/mem"
)

// This file encodes each memory model as a set of strict timing constraints
// over a candidate execution. Every constraint has the form t(u) < t(v) for
// two abstract time points u, v (issue times, commit times, propagation
// arrival times, view times); a candidate is admitted iff some assignment of
// real times satisfies all constraints, which — time being dense and the
// constraint set finite — holds iff the constraint digraph is acyclic.
//
// Time points per model family:
//
//   - SC: one point per operation (issue = perform).
//   - TSO/PSO/RMO: issue(e) per operation plus commit(w) per data write (the
//     moment w retires from the store buffer into memory). Synchronization
//     writes commit at issue, so their commit point IS their issue point.
//     RMO additionally has view(r) per non-forwarded data read: the moment in
//     memory-commit history whose value the read returns (view(r) < issue(r),
//     the staleness relaxation).
//   - WO def-1/def-2 (distributed copies): issue(e) per operation plus
//     apply(w,q) per data write w and remote processor q (the moment w's
//     propagation updates q's copy). Synchronization writes apply to every
//     copy at issue.
//
// Choice points that are not determined by the outcome — whether a read was
// forwarded from the issuer's own buffer or served by memory, and when a
// def-2 reserver's outstanding writes finished draining — are enumerated as
// small branch vectors; the candidate is admitted if any branch yields an
// acyclic graph.

// coInfo indexes one chosen per-location coherence (write-serialization)
// order.
type coInfo struct {
	order map[mem.Addr][]int // write event ids in coherence order
	next  map[int]int        // write event id -> co-successor id, or -1
}

func newCoInfo(order map[mem.Addr][]int) *coInfo {
	ci := &coInfo{order: order, next: make(map[int]int)}
	for _, ids := range order {
		for k, id := range ids {
			if k+1 < len(ids) {
				ci.next[id] = ids[k+1]
			} else {
				ci.next[id] = -1
			}
		}
	}
	return ci
}

func (ci *coInfo) first(a mem.Addr) int {
	if ids := ci.order[a]; len(ids) > 0 {
		return ids[0]
	}
	return -1
}

// checkGraph spends one unit of the per-query budget on an acyclicity test.
func checkGraph(budget *int, g *digraph) (bool, error) {
	if *budget <= 0 {
		return false, fmt.Errorf("axiomatic: graph-check budget exhausted: %w", ErrTooLarge)
	}
	*budget--
	return g.acyclic(), nil
}

// admits reports whether the model sys has a timing witness for the candidate
// (c, co, rf) — plus, for def-2, the synchronization order so.
func admits(sys System, c *combo, co *coInfo, so map[mem.Addr][]int, rf []int, budget *int) (bool, error) {
	switch sys {
	case SysSC:
		return checkGraph(budget, buildSC(c, co, rf))
	case SysTSO, SysPSO, SysRMO:
		return admitsBuffered(sys, c, co, rf, budget)
	case SysWODef1, SysWODef2:
		return admitsCopies(sys, c, co, so, rf, budget)
	default:
		return false, fmt.Errorf("axiomatic: unknown system %d", sys)
	}
}

// po adds the program-order chains on the issue nodes.
func po(g *digraph, c *combo) {
	for p, tr := range c.traces {
		for k := 1; k < len(tr); k++ {
			g.edge(c.offset[p]+k-1, c.offset[p]+k)
		}
	}
}

// buildSC: every operation performs atomically at its single time point, in
// program order; the constraint set is the classic acyclicity of
// po ∪ co ∪ rf ∪ fr.
func buildSC(c *combo, co *coInfo, rf []int) *digraph {
	g := newDigraph(len(c.all))
	po(g, c)
	for _, ids := range co.order {
		for k := 1; k < len(ids); k++ {
			g.edge(ids[k-1], ids[k])
		}
	}
	for id, e := range c.all {
		if !e.reads() {
			continue
		}
		if w := rf[id]; w >= 0 {
			g.edge(w, id) // rf
			// fr; the co chain supplies the rest transitively. An RMW that
			// is itself the co-successor of its rf source needs no edge —
			// its write is the same time point as its read.
			if nx := co.next[w]; nx >= 0 && nx != id {
				g.edge(id, nx)
			}
		} else if f := co.first(e.addr); f >= 0 && f != id {
			g.edge(id, f) // reading the initial value precedes every write
		}
	}
	return g
}

// admitsBuffered checks the store-buffer family. The only free choice left
// after (co, rf) is, per data read whose rf source is the issuer's own latest
// prior same-address data write, whether the read was forwarded from the
// buffer or served by memory after the write committed.
func admitsBuffered(sys System, c *combo, co *coInfo, rf []int, budget *int) (bool, error) {
	n := len(c.all)
	cnode := make([]int, n) // event id -> node standing for its memory commit
	nodes := n
	for id, e := range c.all {
		if e.dataWrite() {
			cnode[id] = nodes
			nodes++
		} else {
			cnode[id] = id
		}
	}
	var branchable []int // read ids where both FWD and MEM are candidates
	for id, e := range c.all {
		if e.op == mem.OpRead {
			if wl := c.ownPrevWrite(id); wl >= 0 && c.all[wl].dataWrite() && rf[id] == wl {
				branchable = append(branchable, id)
			}
		}
	}
	lens := make([]int, len(branchable))
	for i := range lens {
		lens[i] = 2
	}
	found := false
	err := product(lens, maxBranchVectors, func(pick []int) (bool, error) {
		fwd := make(map[int]bool, len(branchable))
		for i, id := range branchable {
			if pick[i] == 1 {
				fwd[id] = true
			}
		}
		ok, err := checkGraph(budget, buildBuffered(sys, c, co, rf, cnode, nodes, fwd))
		if err != nil {
			return true, err
		}
		found = ok
		return ok, nil
	})
	return found, err
}

func buildBuffered(sys System, c *combo, co *coInfo, rf []int, cnode []int, nodes int, fwd map[int]bool) *digraph {
	// RMO view nodes, one per memory-served data read.
	vnode := make(map[int]int)
	if sys == SysRMO {
		for id, e := range c.all {
			if e.op == mem.OpRead && !fwd[id] {
				vnode[id] = nodes
				nodes++
			}
		}
	}
	g := newDigraph(nodes)
	po(g, c)
	for p, tr := range c.traces {
		// Commit order within a buffer: full FIFO for TSO, FIFO per address
		// for PSO/RMO. Synchronization gates on a drained buffer: every
		// program-earlier data write commits before the sync issues.
		lastCommit := -1
		lastByAddr := make(map[mem.Addr]int)
		for k, e := range tr {
			id := c.offset[p] + k
			switch {
			case e.dataWrite():
				g.edge(id, cnode[id]) // a write commits after it issues
				if sys == SysTSO {
					if lastCommit >= 0 {
						g.edge(cnode[lastCommit], cnode[id])
					}
					lastCommit = id
				} else if prev, ok := lastByAddr[e.addr]; ok {
					g.edge(cnode[prev], cnode[id])
				}
				lastByAddr[e.addr] = id
			case e.sync():
				for j := 0; j < k; j++ {
					if w := tr[j]; w.dataWrite() {
						g.edge(cnode[c.offset[p]+j], id)
					}
				}
			}
		}
	}
	// Coherence: memory holds the writes' values in commit order, so the
	// commit points are chained per location.
	for _, ids := range co.order {
		for k := 1; k < len(ids); k++ {
			g.edge(cnode[ids[k-1]], cnode[ids[k]])
		}
	}
	// memRead constrains a point t to observe write w (or the initial value,
	// w < 0) in memory: the co-latest commit before t is w's.
	memRead := func(t int, w int, a mem.Addr) {
		if w >= 0 {
			g.edge(cnode[w], t)
			// As in buildSC, an RMW immediately co-after its rf source gets
			// no fr self-edge: read and write share the issue point.
			if nx := co.next[w]; nx >= 0 && cnode[nx] != t {
				g.edge(t, cnode[nx])
			}
		} else if f := co.first(a); f >= 0 && cnode[f] != t {
			g.edge(t, cnode[f])
		}
	}
	cursor := make(map[[2]int]int) // (proc, addr) -> previous view node
	for p, tr := range c.traces {
		for k, e := range tr {
			id := c.offset[p] + k
			switch {
			case e.sync() && e.reads():
				// Sync accesses act on memory atomically at issue.
				memRead(id, rf[id], e.addr)
			case e.op == mem.OpRead:
				wl := c.ownPrevWrite(id)
				if fwd[id] {
					// Forwarded from the buffer: the source write is still
					// buffered, i.e. commits after the read.
					g.edge(id, cnode[rf[id]])
					continue
				}
				// Memory-served: the issuer's own latest prior same-address
				// write must have left the buffer (else forwarding would have
				// been forced).
				t := id
				if sys == SysRMO {
					t = vnode[id]
					g.edge(t, id) // the observed view is no newer than issue
					// The fence half of every program-earlier sync discards
					// stale views.
					for j := 0; j < k; j++ {
						if tr[j].sync() {
							g.edge(c.offset[p]+j, t)
						}
					}
					// The per-location cursor never retreats.
					ck := [2]int{p, int(e.addr)}
					if prev, ok := cursor[ck]; ok {
						g.edge(prev, t)
					}
					cursor[ck] = t
				}
				if wl >= 0 {
					g.edge(cnode[wl], t)
				}
				memRead(t, rf[id], e.addr)
			}
		}
	}
	return g
}

// admitsCopies checks the distributed-copies family (the paper's weak
// ordering implementations). For def-2 the free choice left after
// (co, so, rf) is, per cross-processor pair of so-consecutive
// synchronization operations, how many of the reserver's data writes had
// been issued by the moment its drain released the reservation.
func admitsCopies(sys System, c *combo, co *coInfo, so map[mem.Addr][]int, rf []int, budget *int) (bool, error) {
	n := len(c.all)
	nproc := len(c.traces)
	// apply(w,q) nodes for data writes and remote processors.
	apply := make(map[[2]int]int)
	nodes := n
	for id, e := range c.all {
		if !e.dataWrite() {
			continue
		}
		for q := 0; q < nproc; q++ {
			if q != e.proc {
				apply[[2]int{id, q}] = nodes
				nodes++
			}
		}
	}
	// arr(w,q): when w's value reaches q's copy — at issue for the writer's
	// own copy and for (multi-copy atomic) synchronization writes.
	arr := func(w, q int) int {
		if node, ok := apply[[2]int{w, q}]; ok {
			return node
		}
		return w
	}
	// Data writes per processor in program order, for drain constraints.
	writesOf := make([][]int, nproc)
	for p, tr := range c.traces {
		for k, e := range tr {
			if e.dataWrite() {
				writesOf[p] = append(writesOf[p], c.offset[p]+k)
			}
		}
	}
	// def-2 gated pairs: so-consecutive sync operations by distinct
	// processors. The reservation set by S (if its issuer was undrained)
	// blocks S' until the issuer's outstanding writes — some prefix of its
	// write sequence that includes at least every write issued before S —
	// have fully applied.
	type gated struct {
		s1, s2 int
		proc   int
		k0     int
	}
	var pairs []gated
	var lens []int
	if sys == SysWODef2 {
		for _, ids := range so {
			for k := 1; k < len(ids); k++ {
				s1, s2 := ids[k-1], ids[k]
				p := c.all[s1].proc
				if p == c.all[s2].proc {
					continue
				}
				k0 := 0
				for _, w := range writesOf[p] {
					if w < s1 { // same thread: event id order is program order
						k0++
					}
				}
				pairs = append(pairs, gated{s1: s1, s2: s2, proc: p, k0: k0})
				lens = append(lens, len(writesOf[p])-k0+1)
			}
		}
	}
	build := func(pick []int) *digraph {
		g := newDigraph(nodes + len(pairs))
		po(g, c)
		// Coherence is the global commit order, and copies machines commit a
		// write (assign its serialization slot) at issue: the chain lives on
		// the issue nodes.
		for _, ids := range co.order {
			for k := 1; k < len(ids); k++ {
				g.edge(ids[k-1], ids[k])
			}
		}
		for id, e := range c.all {
			if e.dataWrite() {
				for q := 0; q < nproc; q++ {
					if q != e.proc {
						g.edge(id, apply[[2]int{id, q}])
					}
				}
			}
			if e.reads() {
				// Every read — data or sync — returns its own copy's value:
				// the rf source has arrived, no co-later write has.
				q := e.proc
				if w := rf[id]; w >= 0 {
					g.edge(arr(w, q), id)
					for nx := co.next[w]; nx >= 0; nx = co.next[nx] {
						if nx != id { // an RMW is not fr-before its own write
							g.edge(id, arr(nx, q))
						}
					}
				} else {
					for _, w := range co.order[e.addr] {
						if w != id {
							g.edge(id, arr(w, q))
						}
					}
				}
			}
			if e.sync() && sys == SysWODef1 {
				// Definition 1 / RP3 fence: a sync waits for the issuer's
				// outstanding accesses to be globally performed.
				for _, w := range writesOf[e.proc] {
					if w >= id {
						break
					}
					for q := 0; q < nproc; q++ {
						if q != e.proc {
							g.edge(apply[[2]int{w, q}], id)
						}
					}
				}
			}
		}
		if sys == SysWODef2 {
			for _, ids := range so {
				for k := 1; k < len(ids); k++ {
					g.edge(ids[k-1], ids[k])
				}
			}
			for i, pr := range pairs {
				d := nodes + i // the drain point releasing the reservation
				k := pr.k0 + pick[i]
				g.edge(pr.s1, d)
				g.edge(d, pr.s2)
				for j, w := range writesOf[pr.proc] {
					if j < k {
						for q := 0; q < nproc; q++ {
							if q != pr.proc {
								g.edge(apply[[2]int{w, q}], d)
							}
						}
					} else {
						g.edge(d, w)
					}
				}
			}
		}
		return g
	}
	found := false
	err := product(lens, maxBranchVectors, func(pick []int) (bool, error) {
		ok, err := checkGraph(budget, build(pick))
		if err != nil {
			return true, err
		}
		found = ok
		return ok, nil
	})
	return found, err
}
