package axiomatic

import "testing"

// BenchmarkAxiomaticCheck measures Admitted over the classic litmus shapes,
// one sub-benchmark per axiom system, so the relational enumeration
// (coherence orders × sync orders × reads-from, pruned by the acyclicity
// checks) joins the perf trajectory alongside the operational explorers in
// BENCH_explore.json. The shape sweep is the same one the differential test
// TestAdmittedMatchesMachines pins for correctness.
func BenchmarkAxiomaticCheck(b *testing.B) {
	ps := shapes()
	for _, sys := range Systems() {
		b.Run(sys.String(), func(b *testing.B) {
			outcomes := 0
			for i := 0; i < b.N; i++ {
				outcomes = 0
				for _, p := range ps {
					got, err := Admitted(p, sys)
					if err != nil {
						b.Fatalf("%s/%s: %v", p.Name, sys, err)
					}
					outcomes += len(got)
				}
			}
			b.ReportMetric(float64(outcomes), "outcomes")
		})
	}
}
