package axiomatic

import (
	"fmt"
	"sort"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Enumeration budgets. Exceeding one fails with ErrTooLarge — the checker is
// exact on the programs it accepts, never approximate, so it refuses rather
// than subsample.
const (
	maxPoolSize       = 32
	maxPoolRounds     = 64
	maxTracesPerProc  = 2048
	maxCombos         = 1 << 16
	maxOrdersPerAddr  = 1024
	maxOrderProduct   = 1 << 14
	maxRfProduct      = 1 << 14
	maxBranchVectors  = 1 << 12
	maxGraphChecks    = 250_000
	maxDataWritesPerT = 8 // bufferDepth and DefaultWindow in internal/model
)

// ev is one dynamic memory operation of a thread-local trace.
type ev struct {
	proc int
	idx  int // program-order operation index (Thread.OpIndex at issue)
	op   mem.Op
	addr mem.Addr
	rval mem.Value // value returned by the read component, if any
	wval mem.Value // value stored by the write component, if any
}

func (e ev) reads() bool     { return e.op.Reads() }
func (e ev) writes() bool    { return e.op.Writes() }
func (e ev) sync() bool      { return e.op.IsSync() }
func (e ev) dataWrite() bool { return e.op == mem.OpWrite }

// initVal returns the initial value of addr (locations absent from Init start
// at zero, mirroring model.initMem).
func initVal(p *program.Program, a mem.Addr) mem.Value { return p.Init[a] }

// valuePools computes, per location, a closed superset of the values any
// execution can store there: the initial value plus every value some
// thread-local simulation can write given the current pools, iterated. Read
// branching draws from these pools, so they over-approximate the reachable
// value set — candidate filtering and the consistency check cut it back down
// exactly. The iteration stops after one round per write instruction: a
// reachable value's derivation is an rf chain through read-modify-writes,
// which visits each write event at most once (rf through an atomic goes
// coherence-backwards), so deeper rounds only manufacture unreachable values
// (e.g. a FetchAdd endlessly re-incrementing its own output).
func valuePools(p *program.Program) (map[mem.Addr][]mem.Value, error) {
	rounds := 1
	for _, code := range p.Threads {
		for _, in := range code {
			if op, ok := in.MemOp(); ok && op.Writes() {
				rounds++
			}
		}
	}
	if rounds > maxPoolRounds {
		// Truncating below the sound bound could lose reachable values, so
		// this is a refusal, not an approximation.
		return nil, fmt.Errorf("axiomatic: %d value-pool rounds exceed %d: %w", rounds, maxPoolRounds, ErrTooLarge)
	}
	sets := make(map[mem.Addr]map[mem.Value]bool)
	for _, a := range p.Addrs() {
		sets[a] = map[mem.Value]bool{initVal(p, a): true}
	}
	pools := poolSlices(sets)
	for round := 0; round < rounds; round++ {
		grew := false
		for ti, code := range p.Threads {
			traces, err := threadTraces(code, ti, pools)
			if err != nil {
				return nil, err
			}
			for _, tr := range traces {
				for _, e := range tr {
					if e.writes() && !sets[e.addr][e.wval] {
						sets[e.addr][e.wval] = true
						if len(sets[e.addr]) > maxPoolSize {
							return nil, fmt.Errorf("axiomatic: value pool of x%d exceeds %d values: %w", e.addr, maxPoolSize, ErrTooLarge)
						}
						grew = true
					}
				}
			}
		}
		if !grew {
			break
		}
		pools = poolSlices(sets)
	}
	return pools, nil
}

func poolSlices(sets map[mem.Addr]map[mem.Value]bool) map[mem.Addr][]mem.Value {
	pools := make(map[mem.Addr][]mem.Value, len(sets))
	for a, s := range sets {
		vs := make([]mem.Value, 0, len(s))
		for v := range s {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		pools[a] = vs
	}
	return pools
}

// threadTraces enumerates every thread-local execution of code: a depth-first
// walk of the interpreter, branching over the value pool at each operation
// with a read component. The program is loop-free (Supports), so each path
// terminates.
func threadTraces(code program.Code, proc int, pools map[mem.Addr][]mem.Value) ([][]ev, error) {
	var out [][]ev
	var walk func(t program.Thread, tr []ev) error
	walk = func(t program.Thread, tr []ev) error {
		for {
			req, ok, err := t.Pending()
			if err != nil {
				return err
			}
			if !ok {
				if len(out) >= maxTracesPerProc {
					return fmt.Errorf("axiomatic: thread %d has more than %d local traces: %w", proc, maxTracesPerProc, ErrTooLarge)
				}
				out = append(out, append([]ev(nil), tr...))
				return nil
			}
			e := ev{proc: proc, idx: t.OpIndex, op: req.Op, addr: req.Addr}
			if req.Op.Reads() {
				for _, v := range pools[req.Addr] {
					tt := t // Thread is a value type: plain copy forks the interpreter
					e2 := e
					e2.rval = v
					if req.Op.Writes() {
						e2.wval = req.NewValue(v)
					}
					tt.Resolve(v)
					branch := append(append([]ev(nil), tr...), e2)
					if err := walk(tt, branch); err != nil {
						return err
					}
				}
				return nil
			}
			e.wval = req.Data
			t.Resolve(0)
			tr = append(tr, e)
		}
	}
	if err := walk(program.NewThread(code), nil); err != nil {
		return nil, err
	}
	return out, nil
}

// combo is one candidate assignment of a local trace to every thread, with
// the flattened event indexing the relational machinery works over.
type combo struct {
	traces [][]ev
	all    []ev  // flattened; the index into all is the event id
	offset []int // offset[p] + position = event id
}

func newCombo(traces [][]ev) *combo {
	c := &combo{traces: traces, offset: make([]int, len(traces))}
	for p, tr := range traces {
		c.offset[p] = len(c.all)
		c.all = append(c.all, tr...)
	}
	return c
}

// writersByAddr returns, per location, the write event ids grouped as
// per-processor program-order chains — the units both co and so enumeration
// interleave.
func (c *combo) writersByAddr() map[mem.Addr][][]int {
	chains := make(map[mem.Addr][][]int)
	for p, tr := range c.traces {
		per := make(map[mem.Addr][]int)
		for k, e := range tr {
			if e.writes() {
				per[e.addr] = append(per[e.addr], c.offset[p]+k)
			}
		}
		for a, ids := range per {
			chains[a] = append(chains[a], ids)
		}
	}
	return chains
}

// syncsByAddr returns, per location, the synchronization-operation event ids
// as per-processor program-order chains.
func (c *combo) syncsByAddr() map[mem.Addr][][]int {
	chains := make(map[mem.Addr][][]int)
	for p, tr := range c.traces {
		per := make(map[mem.Addr][]int)
		for k, e := range tr {
			if e.sync() {
				per[e.addr] = append(per[e.addr], c.offset[p]+k)
			}
		}
		for a, ids := range per {
			chains[a] = append(chains[a], ids)
		}
	}
	return chains
}

// ownPrevWrite returns the event id of the program-order-latest same-address
// write of the reader's own processor before the read, or -1.
func (c *combo) ownPrevWrite(readID int) int {
	r := c.all[readID]
	tr := c.traces[r.proc]
	for k := readID - c.offset[r.proc] - 1; k >= 0; k-- {
		if e := tr[k]; e.writes() && e.addr == r.addr {
			return c.offset[r.proc] + k
		}
	}
	return -1
}

// interleavings enumerates every merge of the chains that preserves each
// chain's internal order (the linear extensions of the union of chains).
func interleavings(chains [][]int, cap int) ([][]int, error) {
	total := 0
	for _, ch := range chains {
		total += len(ch)
	}
	var out [][]int
	idx := make([]int, len(chains))
	cur := make([]int, 0, total)
	var rec func() error
	rec = func() error {
		if len(cur) == total {
			if len(out) >= cap {
				return fmt.Errorf("axiomatic: more than %d orders per location: %w", cap, ErrTooLarge)
			}
			out = append(out, append([]int(nil), cur...))
			return nil
		}
		for i, ch := range chains {
			if idx[i] < len(ch) {
				cur = append(cur, ch[idx[i]])
				idx[i]++
				if err := rec(); err != nil {
					return err
				}
				idx[i]--
				cur = cur[:len(cur)-1]
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return out, nil
}

// product iterates the cartesian product of choice-list lengths, calling f
// with an index vector. It fails if the product exceeds cap.
func product(lens []int, cap int, f func(pick []int) (stop bool, err error)) error {
	n := 1
	for _, l := range lens {
		if l == 0 {
			return nil
		}
		n *= l
		if n > cap {
			return fmt.Errorf("axiomatic: choice product exceeds %d: %w", cap, ErrTooLarge)
		}
	}
	pick := make([]int, len(lens))
	for {
		stop, err := f(pick)
		if err != nil || stop {
			return err
		}
		i := len(pick) - 1
		for ; i >= 0; i-- {
			pick[i]++
			if pick[i] < lens[i] {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}
