// Package axiomatic decides memory-model consistency declaratively, as a
// counterpart to the operational machines in internal/model. A candidate
// execution is a tuple of relations — one local trace per thread (fixing
// every read's value), a reads-from map, a per-location coherence order and,
// for Definition-2 weak ordering, a per-location synchronization order — and
// a model is a set of strict timing constraints over the candidate's abstract
// time points. The candidate is consistent iff the constraints admit a
// realization in dense time, i.e. iff the constraint digraph is acyclic.
//
// Admitted enumerates every candidate of a program exhaustively (within hard
// budgets — the checker refuses with ErrTooLarge rather than subsample) and
// returns the set of admitted outcomes, keyed exactly like the operational
// explorer's mem.Result keys. That makes the two formulations differentially
// testable: for each machine/axiom pair the outcome sets must be equal, in
// both directions.
package axiomatic

import (
	"errors"
	"fmt"
	"sort"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// System names an axiomatically specified memory model.
type System int

const (
	// SysSC is sequential consistency: po ∪ co ∪ rf ∪ fr acyclic.
	SysSC System = iota
	// SysTSO is total store order: a FIFO store buffer per processor with
	// read forwarding, relaxing only W->R order.
	SysTSO
	// SysPSO is partial store order: per-address store buffers, additionally
	// relaxing W->W order across addresses.
	SysPSO
	// SysRMO is the RMO-ish model: PSO plus stale — per-location coherent —
	// read views, additionally relaxing R->R and R->W order.
	SysRMO
	// SysWODef1 is the paper's Definition-1 weak ordering over distributed
	// copies: synchronization waits for the issuer's outstanding accesses to
	// be globally performed.
	SysWODef1
	// SysWODef2 is the paper's Definition-2 weak ordering: synchronization
	// commits eagerly, and a per-location reservation blocks *other*
	// processors' synchronization until the reserver has drained.
	SysWODef2
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SysSC:
		return "sc"
	case SysTSO:
		return "tso"
	case SysPSO:
		return "pso"
	case SysRMO:
		return "rmo"
	case SysWODef1:
		return "wo-def1"
	case SysWODef2:
		return "wo-def2"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// Systems lists every supported system.
func Systems() []System {
	return []System{SysSC, SysTSO, SysPSO, SysRMO, SysWODef1, SysWODef2}
}

// ErrUnsupported marks programs outside the checker's fragment (loops,
// register-indexed addressing, more data writes than the machines' buffers
// hold without stalling).
var ErrUnsupported = errors.New("program outside the axiomatic fragment")

// ErrTooLarge marks programs whose candidate space exceeds the enumeration
// budgets; the checker refuses rather than returning a partial answer.
var ErrTooLarge = errors.New("candidate space exceeds axiomatic budgets")

// CounterpartFor maps an operational machine name (as registered in
// internal/litmus) to the axiomatic system specifying it, if one exists.
// The Figure-1 bus machines share the TSO axioms with the independently
// implemented tso model: a FIFO write buffer in front of an atomic memory
// (coherent caches included) is total store order.
func CounterpartFor(machine string) (System, bool) {
	switch machine {
	case "SC":
		return SysSC, true
	case "tso", "bus+writebuffer", "bus+cache+writebuffer":
		return SysTSO, true
	case "pso":
		return SysPSO, true
	case "rmo":
		return SysRMO, true
	case "WO-def1", "RP3-fence":
		return SysWODef1, true
	case "WO-def2":
		return SysWODef2, true
	default:
		return 0, false
	}
}

// Supports reports (by nil error) that p lies in the checker's fragment:
// loop-free, statically addressed, and with at most maxDataWritesPerT data
// writes per thread — the bound under which neither the store-buffer depth
// nor the copies machines' miss window ever stalls an issue, so the finite
// machine resources impose no ordering the axioms don't know about.
func Supports(p *program.Program) error {
	for ti, code := range p.Threads {
		writes := 0
		for i, in := range code {
			if in.UseAddrReg {
				return fmt.Errorf("thread %d: register-indexed address: %w", ti, ErrUnsupported)
			}
			switch in.Op {
			case program.IBeq, program.IBne, program.IBlt, program.IJmp:
				if in.Target <= i {
					return fmt.Errorf("thread %d: backward branch at %d: %w", ti, i, ErrUnsupported)
				}
			case program.IStore:
				writes++
			}
		}
		if writes > maxDataWritesPerT {
			return fmt.Errorf("thread %d: %d data writes exceed the stall-free bound %d: %w",
				ti, writes, maxDataWritesPerT, ErrUnsupported)
		}
	}
	return nil
}

// Admitted returns every outcome of p the system admits, keyed by
// mem.Result.Key. The enumeration is exhaustive over the fragment Supports
// accepts; it fails with ErrUnsupported or ErrTooLarge instead of
// approximating.
func Admitted(p *program.Program, sys System) (map[string]mem.Result, error) {
	if err := Supports(p); err != nil {
		return nil, err
	}
	pools, err := valuePools(p)
	if err != nil {
		return nil, err
	}
	perThread := make([][][]ev, p.NumThreads())
	lens := make([]int, p.NumThreads())
	for ti, code := range p.Threads {
		perThread[ti], err = threadTraces(code, ti, pools)
		if err != nil {
			return nil, err
		}
		lens[ti] = len(perThread[ti])
	}
	admitted := make(map[string]mem.Result)
	budget := maxGraphChecks
	err = product(lens, maxCombos, func(pick []int) (bool, error) {
		traces := make([][]ev, len(pick))
		for i, k := range pick {
			traces[i] = perThread[i][k]
		}
		return false, admitCombo(newCombo(traces), p, sys, admitted, &budget)
	})
	if err != nil {
		return nil, err
	}
	return admitted, nil
}

// admitCombo enumerates the relational choices for one trace combination —
// coherence orders, then (per previously unseen outcome) synchronization
// orders and reads-from maps — recording each outcome for which some choice
// is consistent.
func admitCombo(c *combo, p *program.Program, sys System, admitted map[string]mem.Result, budget *int) error {
	// Reads-from candidates per read. A read may take any value-matching
	// write of another processor, its own processor's latest prior
	// same-address write (earlier own writes are shadowed on every model),
	// or the initial value if no own prior write exists.
	var readIDs []int
	var rfCands [][]int
	for id, e := range c.all {
		if !e.reads() {
			continue
		}
		wl := c.ownPrevWrite(id)
		var cands []int
		for wid, w := range c.all {
			if !w.writes() || w.addr != e.addr || w.wval != e.rval {
				continue
			}
			if w.proc == e.proc && wid != wl {
				continue
			}
			cands = append(cands, wid)
		}
		if wl < 0 && e.rval == initVal(p, e.addr) {
			cands = append(cands, -1)
		}
		if len(cands) == 0 {
			return nil // no write can justify this read: combo infeasible
		}
		readIDs = append(readIDs, id)
		rfCands = append(rfCands, cands)
	}
	rfLens := make([]int, len(readIDs))
	for i, cands := range rfCands {
		rfLens[i] = len(cands)
	}

	coAddrs, coOrders, err := ordersOf(c.writersByAddr())
	if err != nil {
		return err
	}
	coLens := make([]int, len(coOrders))
	for i, os := range coOrders {
		coLens[i] = len(os)
	}

	var soAddrs []mem.Addr
	var soOrders [][][]int
	soLens := []int(nil)
	if sys == SysWODef2 {
		soAddrs, soOrders, err = ordersOf(c.syncsByAddr())
		if err != nil {
			return err
		}
		soLens = make([]int, len(soOrders))
		for i, os := range soOrders {
			soLens[i] = len(os)
		}
	}

	rf := make([]int, len(c.all))
	return product(coLens, maxOrderProduct, func(coPick []int) (bool, error) {
		order := make(map[mem.Addr][]int, len(coAddrs))
		for i, a := range coAddrs {
			order[a] = coOrders[i][coPick[i]]
		}
		res := outcome(c, p, order)
		key := res.Key()
		if _, ok := admitted[key]; ok {
			return false, nil // already admitted via another candidate
		}
		co := newCoInfo(order)
		found := false
		err := product(soLens, maxOrderProduct, func(soPick []int) (bool, error) {
			so := make(map[mem.Addr][]int, len(soAddrs))
			for i, a := range soAddrs {
				so[a] = soOrders[i][soPick[i]]
			}
			err := product(rfLens, maxRfProduct, func(rfPick []int) (bool, error) {
				for i, id := range readIDs {
					rf[id] = rfCands[i][rfPick[i]]
				}
				ok, err := admits(sys, c, co, so, rf, budget)
				if err != nil {
					return true, err
				}
				found = ok
				return ok, nil
			})
			return found, err
		})
		if err != nil {
			return true, err
		}
		if found {
			admitted[key] = res
		}
		return false, nil
	})
}

// ordersOf expands per-processor chains into every linear extension, per
// location, returning locations in sorted order for determinism.
func ordersOf(chains map[mem.Addr][][]int) ([]mem.Addr, [][][]int, error) {
	addrs := make([]mem.Addr, 0, len(chains))
	for a := range chains {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	orders := make([][][]int, len(addrs))
	for i, a := range addrs {
		os, err := interleavings(chains[a], maxOrdersPerAddr)
		if err != nil {
			return nil, nil, err
		}
		orders[i] = os
	}
	return addrs, orders, nil
}

// outcome computes the observable result of a candidate: every read's value
// (fixed by the trace combination) and the final memory (the coherence-last
// write per location over the program's full static universe, matching
// model.initMem's domain).
func outcome(c *combo, p *program.Program, order map[mem.Addr][]int) mem.Result {
	res := mem.Result{
		Reads: make(map[mem.ReadKey]mem.Value),
		Final: make(map[mem.Addr]mem.Value),
	}
	for _, e := range c.all {
		if e.reads() {
			res.Reads[mem.ReadKey{Proc: mem.ProcID(e.proc), Index: e.idx}] = e.rval
		}
	}
	for _, a := range p.Addrs() {
		res.Final[a] = initVal(p, a)
	}
	for a, ids := range order {
		res.Final[a] = c.all[ids[len(ids)-1]].wval
	}
	return res
}
