package explore_test

// Differential tests pinning the parallel kernel's contract: the worker
// width never changes what is observable. The determinism matrix sweeps the
// litmus corpus across widths, reduction on/off, and both key modes; the
// equivalence sweep does serial-vs-parallel over the random corpus; and the
// budget test pins the state count the budget error now carries.

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"weakorder/internal/explore"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/par"
	"weakorder/internal/program"
)

// widthMatrix returns the deduplicated worker widths the determinism tests
// sweep: serial, two workers (the smallest width where races exist), and one
// per core.
func widthMatrix() []int {
	widths := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		widths = append(widths, n)
	}
	return widths
}

// exploreFinalSet explores the machine exhaustively (no early stop) at the
// given width and returns the canonical final-state set with the stats.
func exploreFinalSet(x *model.Explorer, m model.Machine) (string, model.Stats, error) {
	var keys []string
	st, err := x.FinalStates(m, func(fs *program.FinalState) bool {
		keys = append(keys, renderFinal(fs))
		return true
	})
	return joinSorted(keys), st, err
}

// TestExploreWorkerWidthDeterminism is the golden determinism matrix: over
// the whole litmus corpus and every machine (broken fixtures included),
// widths {1, 2, GOMAXPROCS} × reduction on/off × digest/full keys must all
// produce byte-identical final-state sets, and with reduction off — where
// every reachable state is expanded exactly once in full, making the count a
// property of the graph rather than the visit order — identical Stats.States
// and Stats.Transitions as well. With reduction on, widths may legitimately
// differ in states visited (a lost mask race re-expands the difference), but
// never in outcomes.
func TestExploreWorkerWidthDeterminism(t *testing.T) {
	widths := widthMatrix()
	type cell struct {
		test *litmus.Test
		f    litmus.Factory
	}
	var cells []cell
	for _, lt := range litmus.Corpus() {
		for _, f := range allFactories() {
			cells = append(cells, cell{lt, f})
		}
	}
	_, err := par.Map(cells, 0, func(_ int, c cell) (struct{}, error) {
		type combo struct {
			workers  int
			fullExpl bool
			fullKeys bool
		}
		var baseline string        // final set of the first combo
		fullStats := model.Stats{} // stats of the first reduction-off combo
		haveFullStats := false
		for _, w := range widths {
			for _, fullExpl := range []bool{false, true} {
				for _, fullKeys := range []bool{false, true} {
					cmb := combo{w, fullExpl, fullKeys}
					x := &model.Explorer{Workers: w, FullExploration: fullExpl, FullKeys: fullKeys}
					set, st, err := exploreFinalSet(x, c.f.New(c.test.Prog))
					if err != nil {
						return struct{}{}, fmt.Errorf("%s on %s %+v: %w", c.test.Name, c.f.Name, cmb, err)
					}
					if baseline == "" {
						baseline = set
					} else if set != baseline {
						return struct{}{}, fmt.Errorf("%s on %s %+v: final-state set differs from baseline\n--- got ---\n%s\n--- want ---\n%s",
							c.test.Name, c.f.Name, cmb, set, baseline)
					}
					if fullExpl {
						if !haveFullStats {
							fullStats, haveFullStats = st, true
						} else if st.States != fullStats.States || st.Transitions != fullStats.Transitions {
							return struct{}{}, fmt.Errorf("%s on %s %+v: full-exploration stats not width-invariant: got %d states/%d transitions, want %d/%d",
								c.test.Name, c.f.Name, cmb, st.States, st.Transitions, fullStats.States, fullStats.Transitions)
						}
					}
				}
			}
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// parallelFinalSets explores the program on one machine at KeyState
// granularity serially and at the given width (both with reduction on, the
// production configuration) and returns the canonical final-state sets. The
// skip decision reuses finalSets' protocol: a serial FULL exploration runs
// first, so skipping is deterministic, and any exploration that visits a
// subset of the reachable states — reduced, any width — fits the same budget.
func parallelFinalSets(f litmus.Factory, p *program.Program, workers int) (serial, parallel string, skipped bool, err error) {
	collect := func(w int) (string, error) {
		x := &model.Explorer{MaxStates: diffMaxStates, Workers: w}
		var keys []string
		_, err := x.FinalStates(f.New(p), func(fs *program.FinalState) bool {
			keys = append(keys, renderFinal(fs))
			return true
		})
		return joinSorted(keys), err
	}
	full := &model.Explorer{MaxStates: diffMaxStates, FullExploration: true}
	_, err = full.FinalStates(f.New(p), func(*program.FinalState) bool { return true })
	if errors.Is(err, model.ErrStateBudget) {
		return "", "", true, nil
	}
	if err != nil {
		return "", "", false, err
	}
	if serial, err = collect(1); err != nil {
		return "", "", false, err
	}
	parallel, err = collect(workers)
	return serial, parallel, false, err
}

// TestParallelEquivalence is the parallel-vs-serial differential gate: on the
// random corpus (a subset under -short, which is how the CI POR gate runs
// it), every machine's final-state set at width 2 must be byte-identical to
// the serial kernel's.
func TestParallelEquivalence(t *testing.T) {
	factories := allFactories()
	corpus := randomCorpus(256)
	if testing.Short() {
		corpus = corpus[:64]
	}
	skipped := sweep(t, corpus, func(p *program.Program) (int, error) {
		n := 0
		for _, f := range factories {
			serial, parallel, skip, err := parallelFinalSets(f, p, 2)
			if err != nil {
				return n, fmt.Errorf("%s on %s: %w", p.Name, f.Name, err)
			}
			if skip {
				n++
				continue
			}
			if serial != parallel {
				return n, fmt.Errorf("%s on %s: parallel exploration changed the final-state set\n--- serial ---\n%s\n--- parallel ---\n%s",
					p.Name, f.Name, serial, parallel)
			}
		}
		return n, nil
	})
	if limit := len(corpus) * len(factories) / 10; skipped > limit {
		t.Fatalf("%d of %d cells skipped on state budget (limit %d) — corpus or budget needs retuning",
			skipped, len(corpus)*len(factories), limit)
	}
}

// TestStateBudgetErrorCount pins the budget error's payload at every width:
// it must satisfy errors.Is(err, ErrStateBudget) as before, and the concrete
// StateBudgetError must report exactly MaxStates distinct states — the count
// the message now prints so budget tuning needs no -metrics rerun.
func TestStateBudgetErrorCount(t *testing.T) {
	lt := litmus.Corpus()[0]
	f := allFactories()[0]
	const budget = 10
	for _, w := range []int{1, 3} {
		x := &model.Explorer{MaxStates: budget, Workers: w}
		_, err := x.FinalStates(f.New(lt.Prog), func(*program.FinalState) bool { return true })
		if !errors.Is(err, model.ErrStateBudget) {
			t.Fatalf("workers=%d: got %v, want a state-budget error", w, err)
		}
		var sbe *explore.StateBudgetError
		if !errors.As(err, &sbe) {
			t.Fatalf("workers=%d: error %v does not carry *explore.StateBudgetError", w, err)
		}
		if sbe.States != budget {
			t.Fatalf("workers=%d: budget error reports %d states, want %d", w, sbe.States, budget)
		}
	}
}
