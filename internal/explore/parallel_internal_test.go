package explore

// White-box tests for the parallel kernel's building blocks — the
// work-stealing deque and the striped visited store — plus regression
// coverage for the wide-state (>64 enabled steps) expansion path and the
// visited-store pre-sizing benchmark.

import (
	"encoding/binary"
	"fmt"
	"testing"

	"weakorder/internal/mem"
)

func TestWSDequeOrder(t *testing.T) {
	d := &wsDeque{}
	mk := func(i int) workItem { return workItem{sleep: []Step{{Proc: i}}} }
	id := func(it workItem) int { return it.sleep[0].Proc }
	for i := 0; i < 5; i++ {
		d.push(mk(i))
	}
	if it, ok := d.pop(); !ok || id(it) != 4 {
		t.Fatalf("pop: got %v/%v, want item 4 (LIFO owner side)", it, ok)
	}
	if it, ok := d.steal(); !ok || id(it) != 0 {
		t.Fatalf("steal: got %v/%v, want item 0 (FIFO thief side)", it, ok)
	}
	if it, ok := d.steal(); !ok || id(it) != 1 {
		t.Fatalf("steal: got %v/%v, want item 1", it, ok)
	}
	if it, ok := d.pop(); !ok || id(it) != 3 {
		t.Fatalf("pop: got %v/%v, want item 3", it, ok)
	}
	if it, ok := d.pop(); !ok || id(it) != 2 {
		t.Fatalf("pop: got %v/%v, want item 2", it, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
	if d.size.Load() != 0 {
		t.Fatalf("empty deque reports size %d", d.size.Load())
	}
	// Steal enough to trigger head compaction and verify order survives it.
	for i := 0; i < 100; i++ {
		d.push(mk(i))
	}
	for i := 0; i < 80; i++ {
		if it, ok := d.steal(); !ok || id(it) != i {
			t.Fatalf("steal %d across compaction: got %v/%v", i, it, ok)
		}
	}
	for i := 99; i >= 80; i-- {
		if it, ok := d.pop(); !ok || id(it) != i {
			t.Fatalf("pop %d across compaction: got %v/%v", i, it, ok)
		}
	}
}

func TestStripedVisitedMonotonic(t *testing.T) {
	for _, fullKeys := range []bool{false, true} {
		t.Run(fmt.Sprintf("fullKeys=%v", fullKeys), func(t *testing.T) {
			v := newStripedVisited(fullKeys, 0, 100)
			key := []byte("state-a")
			all := maskAll(4)
			todo, isNew, over := v.visit(key, all, 0b1100)
			if over || !isNew || todo != 0b0011 {
				t.Fatalf("first visit: todo=%04b isNew=%v over=%v, want 0011 true false", todo, isNew, over)
			}
			// Revisit with a different skip: the steps stored as skipped but
			// expandable now come back, and the stored mask shrinks to the
			// intersection.
			todo, isNew, over = v.visit(key, all, 0b1010)
			if over || isNew || todo != 0b0100 {
				t.Fatalf("revisit: todo=%04b isNew=%v over=%v, want 0100 false false", todo, isNew, over)
			}
			// The same revisit again: nothing left to hand out.
			if todo, _, _ = v.visit(key, all, 0b1010); todo != 0 {
				t.Fatalf("repeated revisit handed out %04b twice", todo)
			}
			// A sleep-free revisit drains the rest; the mask can only shrink.
			if todo, _, _ = v.visit(key, all, 0); todo != 0b1000 {
				t.Fatalf("final revisit: todo=%04b, want 1000", todo)
			}
			if todo, _, _ = v.visit(key, all, 0); todo != 0 {
				t.Fatalf("drained state handed out %04b", todo)
			}

			// Budget: reservations, not map sizes, are what the budget counts,
			// so exactly budget distinct states commit at any race outcome.
			v2 := newStripedVisited(fullKeys, 0, 2)
			for i := 0; i < 2; i++ {
				if _, _, over := v2.visit([]byte{byte(i)}, 1, 0); over {
					t.Fatalf("state %d tripped a budget of 2", i)
				}
			}
			if _, _, over := v2.visit([]byte{9}, 1, 0); !over {
				t.Fatal("third distinct state did not trip a budget of 2")
			}
			if _, isNew, over := v2.visit([]byte{1}, 1, 0); over || isNew {
				t.Fatal("revisit of a committed state tripped the budget")
			}
		})
	}
}

// fanSystem is a two-level tree: the root offers width one-shot opaque steps,
// each leading to a distinct terminal state. With width > 64 it regression-
// tests the wide-state path: every step past index 63 must still be expanded
// (the packed masks cannot describe it), serial and parallel alike.
type fanSystem struct {
	width  int
	picked int // -1 at the root
}

func (f *fanSystem) Name() string { return "fan" }

func (f *fanSystem) Clone() TransitionSystem { c := *f; return &c }

func (f *fanSystem) Steps() []Step {
	if f.picked >= 0 {
		return nil
	}
	steps := make([]Step, f.width)
	for i := range steps {
		steps[i] = Step{Proc: i, Info: Info{Agent: i, Opaque: true}}
	}
	return steps
}

func (f *fanSystem) Apply(t Step) error { f.picked = t.Proc; return nil }

func (f *fanSystem) Done() bool { return f.picked >= 0 }

func (f *fanSystem) AppendKey(key []byte) []byte {
	return binary.AppendVarint(key, int64(f.picked))
}

func (f *fanSystem) Prune() bool { return false }

func (f *fanSystem) Footprints(buf []AgentFootprints) []AgentFootprints {
	for i := 0; i < f.width; i++ {
		buf = append(buf, AgentFootprints{Future: Footprint{Opaque: true}})
	}
	return buf
}

func TestManyStepsFullExpansion(t *testing.T) {
	const width = 70
	for _, workers := range []int{1, 3} {
		for _, fullExpl := range []bool{false, true} {
			x := &Explorer{Workers: workers, FullExploration: fullExpl}
			finals := 0
			st, err := x.Run(&fanSystem{width: width, picked: -1}, func(TransitionSystem) bool {
				finals++
				return true
			})
			if err != nil {
				t.Fatalf("workers=%d fullExpl=%v: %v", workers, fullExpl, err)
			}
			if st.States != width+1 || st.Finals != width || st.Transitions != width || finals != width {
				t.Fatalf("workers=%d fullExpl=%v: got %d states / %d transitions / %d finals (%d delivered), want %d/%d/%d",
					workers, fullExpl, st.States, st.Transitions, st.Finals, finals, width+1, width, width)
			}
		}
	}
}

// countSystem is a grid of independent per-agent counters: agents distinct,
// addresses distinct, so full exploration visits (limit+1)^agents states —
// a pure visited-store stress with trivial per-state work.
type countSystem struct {
	limit int
	vals  []int
}

func (c *countSystem) Name() string { return "count" }

func (c *countSystem) Clone() TransitionSystem {
	return &countSystem{limit: c.limit, vals: append([]int(nil), c.vals...)}
}

func (c *countSystem) Steps() []Step {
	var steps []Step
	for i, v := range c.vals {
		if v < c.limit {
			steps = append(steps, Step{
				Proc: i,
				Info: Info{Agent: i, Addr: mem.Addr(i), Op: mem.OpWrite, AddrBit: uint64(1) << i},
			})
		}
	}
	return steps
}

func (c *countSystem) Apply(t Step) error { c.vals[t.Proc]++; return nil }

func (c *countSystem) Done() bool {
	for _, v := range c.vals {
		if v < c.limit {
			return false
		}
	}
	return true
}

func (c *countSystem) AppendKey(key []byte) []byte {
	for _, v := range c.vals {
		key = binary.AppendUvarint(key, uint64(v))
	}
	return key
}

func (c *countSystem) Prune() bool { return false }

func (c *countSystem) Footprints(buf []AgentFootprints) []AgentFootprints {
	for i, v := range c.vals {
		var fp Footprint
		if v < c.limit {
			fp.Writes = uint64(1) << i
		}
		buf = append(buf, AgentFootprints{Future: fp})
	}
	return buf
}

// BenchmarkExplorerVisited pins the visited store's allocation behavior: a
// 4096-state full exploration with MaxStates set, so the store is pre-sized
// from the budget and allocs/op stays flat instead of growing with rehash
// storms. Compare against BENCH_explore.json when touching the store.
func BenchmarkExplorerVisited(b *testing.B) {
	const limit, agents = 7, 4 // (limit+1)^agents = 4096 states
	want := 1
	for i := 0; i < agents; i++ {
		want *= limit + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := &Explorer{FullExploration: true, MaxStates: want + 1}
		st, err := x.Run(&countSystem{limit: limit, vals: make([]int, agents)},
			func(TransitionSystem) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		if st.States != want {
			b.Fatalf("visited %d states, want %d", st.States, want)
		}
	}
}
