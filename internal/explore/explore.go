// Package explore is the single state-space exploration kernel behind every
// enumerator in the repository: the operational-model explorer
// (model.Explorer), the sequential-consistency replay search (core.SCCheck),
// and — through the model layer — the fuzzer's idealized-execution
// enumeration. A client implements the TransitionSystem interface (enabled
// steps, apply, canonical append-key, per-agent footprints) and the kernel
// provides the explicit-stack depth-first search, state deduplication,
// budgets, and conflict-driven partial-order reduction.
//
// # Partial-order reduction
//
// The reduction combines two classic techniques, both keyed on the paper's
// conflict predicate (Definition 3: two accesses conflict when they target
// the same location and at least one writes):
//
//   - Persistent sets (Godefroid) reduce the number of *states* visited. At
//     each state the kernel selects a subset of the enabled steps — all
//     enabled steps of an agent set A closed under two attraction rules —
//     such that anything agents outside A can ever do commutes with the
//     subset. Agent q is attracted into A when (1) q's future footprint
//     conflicts with the footprint of an A-agent's *currently enabled* steps
//     (q could eventually perform a step dependent on the chosen subset), or
//     (2) q's future footprint conflicts with an A-agent's *wake* footprint
//     (q could enable a currently frozen step of an A-agent, whose execution
//     would be same-agent-dependent on the subset). Exploring only the
//     subset still reaches every terminal state, so outcome sets are
//     preserved. Rule 2 is why the construction is sound without inspecting
//     disabled steps: the transition system declares, per agent, an
//     over-approximation of the accesses *by others* that can unfreeze any
//     of its currently disabled steps, and guarantees everything else about
//     a disabled step's enabledness depends on the agent itself (the
//     "frozen gate" contract).
//
//   - Sleep sets (Godefroid) reduce the number of *transitions* re-explored
//     between already-visited states: after fully exploring the subtree below
//     step t, commuting sibling steps carry t in their sleep set, pruning the
//     symmetric interleavings. Because deduplication matches states, a state
//     revisited with a smaller skip mask re-expands exactly the steps that
//     were skipped before but are expandable now, storing the intersection
//     (the sleep-set/state-matching algorithm of Godefroid's thesis, ch. 5).
//
// Independence is conservative: steps of the same agent never commute, two
// synchronization steps never commute (their global commit order is part of
// execution-level keys), a fence step never commutes with a write or another
// fence (its effect spans every location), and otherwise steps commute
// exactly when their declared single-access footprints do not conflict. A transition system must
// only declare footprints whose commutation is real at the level of canonical
// keys: if two steps are independent under Independent, applying them in
// either order from any state where both are enabled must produce
// key-identical states, and neither may disable the other. Steps that cannot
// promise this set Opaque and are excluded from all reduction. See DESIGN.md
// §"Exploration kernel" for the soundness argument and the per-machine
// footprint declarations.
//
// With FullExploration set, both reductions are disabled and the search
// degenerates to the plain exhaustive DFS over every enabled step.
package explore

import (
	"errors"
	"fmt"
	"math/bits"

	"weakorder/internal/digest"
	"weakorder/internal/mem"
)

// Info is the reduction-relevant footprint of a step, declared by the
// transition system.
type Info struct {
	// Agent is the logical process the step acts for. Steps of the same
	// agent never commute. The agent need not be the processor named in the
	// step's identity: a write propagation in a cache-based machine is a step
	// of its *source* processor (whose outstanding-access counter it
	// decrements), delivered at a destination.
	Agent int
	// Addr and Op describe the step as one access in the paper's vocabulary;
	// they feed mem.Conflicts and the sync test.
	Addr mem.Addr
	Op   mem.Op
	// AddrBit is Addr under the system's dense footprint indexing (the same
	// indexing Footprint masks use); zero means the address has no dense bit
	// and the step's footprint degrades to Wild.
	AddrBit uint64
	// Opaque marks a step with an undeclarable footprint: it conflicts with
	// everything and never participates in reduction.
	Opaque bool
	// Fence marks a step whose effect additionally spans every location at
	// once — e.g. a full memory fence that snaps the issuing processor's view
	// of all write histories. A fence is dependent on every write and on every
	// other fence, regardless of address: committing a write before the fence
	// leaves the fencing processor permanently fresh on that location, while
	// committing it after leaves a stale view available. Steps that only read
	// (and other non-fence, non-write steps) still commute with a fence.
	Fence bool
}

// footprint views the step's single access as a Footprint.
func (i Info) footprint() Footprint {
	if i.Opaque {
		return Footprint{Opaque: true}
	}
	fp := Footprint{Sync: i.Op.IsSync(), Fence: i.Fence}
	if i.AddrBit == 0 {
		fp.Wild = true
		return fp
	}
	if i.Op.Reads() {
		fp.Reads = i.AddrBit
	}
	if i.Op.Writes() {
		fp.Writes = i.AddrBit
	}
	return fp
}

// Step is one enabled transition of a TransitionSystem: a system-private
// identity (Kind, Proc, Aux) that Apply interprets, plus the Info the reducer
// needs. The identity must be stable while the step stays enabled: if a step
// sits in a sleep set across the application of an independent step, the same
// (Kind, Proc, Aux) triple must still denote the same action afterwards.
type Step struct {
	Kind uint8
	Proc int
	Aux  int64
	Info
}

// String implements fmt.Stringer.
func (s Step) String() string {
	if s.Opaque {
		return fmt.Sprintf("step(%d,P%d,%d)", s.Kind, s.Proc, s.Aux)
	}
	return fmt.Sprintf("step(%d,P%d,%d:%s x%d)", s.Kind, s.Proc, s.Aux, s.Op, s.Addr)
}

// same reports identity (not footprint) equality.
func (s Step) same(o Step) bool { return s.Kind == o.Kind && s.Proc == o.Proc && s.Aux == o.Aux }

// Independent reports whether two enabled steps commute: they must act for
// different agents, neither may be opaque, and their accesses must not
// conflict in the paper's sense (same location, at least one write —
// mem.Conflicts). A fence step (Info.Fence) is additionally dependent on
// every write and every other fence whatever their addresses — its effect
// spans all locations. With visibleSyncOrder set, two synchronization steps
// never commute even on different locations: the global sync commit order is
// part of execution-level state keys (the sync log that orders
// happens-before), so swapping two syncs produces key-distinct states.
// Dependence is the conservative default.
func Independent(a, b Step, visibleSyncOrder bool) bool {
	if a.Opaque || b.Opaque || a.Agent == b.Agent {
		return false
	}
	if a.Fence && (b.Fence || b.Op.Writes()) || b.Fence && a.Op.Writes() {
		return false
	}
	if visibleSyncOrder && a.Op.IsSync() && b.Op.IsSync() {
		return false
	}
	return a.Addr != b.Addr || !mem.Conflicts(a.Op, b.Op)
}

// Footprint is a set of possible accesses: the locations that may be read or
// written (as bitmasks over a system-chosen dense address indexing), whether
// a synchronization or opaque step may occur, and whether statically unknown
// locations may be touched.
type Footprint struct {
	Reads  uint64 // locations that may be read (dense index bitmask)
	Writes uint64 // locations that may be written
	Wild   bool   // may access statically unknown locations (reads and writes)
	Sync   bool   // may include a synchronization step
	Opaque bool   // may include an opaque step
	Fence  bool   // may include a fence step (dependent on all writes and fences)
}

// AgentFootprints is what a transition system declares per agent for the
// persistent-set construction.
type AgentFootprints struct {
	// Future over-approximates every step the agent may still perform, from
	// the current state to the end of every execution.
	Future Footprint
	// Wake over-approximates the accesses OTHER agents can perform that may
	// enable a currently disabled step of this agent. By declaring it, the
	// system promises the complement — the "frozen gate" contract: a disabled
	// step of agent p becomes enabled only through steps of p itself or
	// through steps whose footprints conflict with p's Wake. Systems whose
	// enabling gates all depend on the agent's own state alone (the common
	// case) leave it zero. See DESIGN.md.
	Wake Footprint
}

// Conflicts reports whether a step drawn from one footprint may depend on a
// step drawn from the other; visibleSyncOrder mirrors Independent's flag.
func (f Footprint) Conflicts(g Footprint, visibleSyncOrder bool) bool {
	if f.Opaque || g.Opaque {
		return true
	}
	if f.Fence && (g.Fence || g.Wild || g.Writes != 0) || g.Fence && (f.Wild || f.Writes != 0) {
		return true
	}
	if visibleSyncOrder && f.Sync && g.Sync {
		return true
	}
	if f.Wild && (g.Wild || g.Reads|g.Writes != 0) {
		return true
	}
	if g.Wild && f.Reads|f.Writes != 0 {
		return true
	}
	return f.Writes&(g.Reads|g.Writes) != 0 || g.Writes&f.Reads != 0
}

// TransitionSystem is a nondeterministic system under exploration. All
// methods are called from a single goroutine; Clone must return a deep,
// independent copy.
type TransitionSystem interface {
	// Name identifies the system in error messages.
	Name() string
	// Clone returns an independent deep copy.
	Clone() TransitionSystem
	// Steps lists the currently enabled steps. The order must be canonical:
	// two states with equal keys must list position-aligned steps (same
	// kinds, agents, and footprints at each index), since the kernel stores
	// positional masks per visited state. The kernel calls Steps exactly once
	// per state, before AppendKey, so systems may use it to normalize lazy
	// state.
	Steps() []Step
	// Apply performs one enabled step.
	Apply(Step) error
	// Done reports whether a step-less state is a legitimate terminal state.
	Done() bool
	// AppendKey appends the canonical, prefix-free binary encoding of the
	// state to key and returns the extended slice.
	AppendKey(key []byte) []byte
	// Prune reports whether the current path should be cut short (counted in
	// Stats.Truncated); systems with unbounded executions bound them here.
	Prune() bool
	// Footprints appends one AgentFootprints per agent to buf and returns
	// it. Every enabled step's Agent must index into the result.
	Footprints(buf []AgentFootprints) []AgentFootprints
}

// DefaultMaxStates is the safety net applied when Explorer.MaxStates is 0.
const DefaultMaxStates = 2_000_000

// ErrStateBudget reports that exploration exceeded MaxStates. Run returns it
// wrapped with the system name; check with errors.Is.
var ErrStateBudget = errors.New("explore: state budget exhausted")

// StateBudgetError is the concrete error Run returns when exploration
// exceeds MaxStates. It satisfies errors.Is(err, ErrStateBudget) and carries
// the number of distinct states visited when the budget tripped, so callers
// can print an actionable retuning hint without rerunning under -metrics.
type StateBudgetError struct {
	System string // TransitionSystem.Name()
	States int    // distinct states visited when the budget was exhausted
}

// Error implements error.
func (e *StateBudgetError) Error() string {
	return fmt.Sprintf("explore: exploring %s: state budget exhausted after %d distinct states", e.System, e.States)
}

// Unwrap makes errors.Is(err, ErrStateBudget) hold.
func (e *StateBudgetError) Unwrap() error { return ErrStateBudget }

// Explorer configures the exploration kernel. The zero value explores with
// partial-order reduction, digest-deduplicated states, and the
// DefaultMaxStates budget.
type Explorer struct {
	// MaxStates bounds the number of distinct states visited (0 = the
	// DefaultMaxStates safety net). Exceeding it aborts with an error
	// satisfying errors.Is(err, ErrStateBudget).
	MaxStates int
	// FullExploration disables the partial-order reduction: every enabled
	// step of every state is expanded. The escape hatch for debugging and for
	// the differential tests that pin POR soundness.
	FullExploration bool
	// FullKeys deduplicates on the full canonical key encoding instead of
	// its 128-bit digest. The digest path is what production sweeps use; the
	// full-key path is collision-free by construction and exists as a debug
	// cross-check.
	FullKeys bool
	// VisibleSyncOrder declares that the relative completion order of
	// synchronization operations on *different* locations is part of the
	// state key (execution-level keys embedding the global sync log). It
	// makes all sync pairs mutually dependent; without it, same-location
	// conflicts alone order syncs. Clients whose keys record sync history
	// (model.KeyExecution) must set it.
	VisibleSyncOrder bool
	// AllowStuck treats step-less states that are not Done as ordinary dead
	// ends instead of deadlock errors. The SC replay search sets it: a
	// blocked replay (recorded read value unreachable) is an expected dead
	// end, not a modeling bug.
	AllowStuck bool
	// Workers selects the exploration width. 0 or 1 runs the classic serial
	// kernel. n > 1 runs exactly n workers sharing a work-stealing frontier
	// and a striped visited store (the extra n-1 slots are registered with
	// the process-wide par budget so nested sweeps shrink accordingly). A
	// negative value auto-sizes: the run claims as many spare slots as the
	// par budget has free, possibly none (serial). Every width yields the
	// same terminal-state set — see DESIGN.md §"Parallel exploration" — but
	// the order in which final() observes them, and Stats under reduction,
	// may vary run to run for widths above 1.
	Workers int
}

// Stats summarizes one exploration.
type Stats struct {
	States      int // distinct states visited
	Transitions int // steps applied
	Finals      int // distinct terminal states reached
	Truncated   int // paths pruned by TransitionSystem.Prune (0 means exhaustive)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	if s.Truncated > 0 {
		return fmt.Sprintf("%d states, %d transitions, %d final states, %d paths truncated",
			s.States, s.Transitions, s.Finals, s.Truncated)
	}
	return fmt.Sprintf("%d states, %d transitions, %d final states", s.States, s.Transitions, s.Finals)
}

// visitedSet stores, per visited state, the mask of steps NOT expanded from
// it (asleep or outside the persistent set) — either keyed by fixed-seed
// 128-bit digest (default: constant memory per state) or by the full key
// bytes (FullKeys debug mode).
type visitedSet struct {
	hashed map[digest.Sum]uint64
	full   map[string]uint64
}

// visitedCapacity sizes the visited store from the state budget: an explicit
// MaxStates is a size hint (capped so absurd budgets don't preallocate
// gigabytes), while the DefaultMaxStates safety net is not — runs that never
// said how big they are start small and grow.
func visitedCapacity(maxStates int) int {
	const floor, ceil = 1024, 1 << 21
	switch {
	case maxStates <= 0:
		return floor
	case maxStates < floor:
		return maxStates
	case maxStates > ceil:
		return ceil
	default:
		return maxStates
	}
}

func newVisitedSet(fullKeys bool, capacity int) *visitedSet {
	v := &visitedSet{}
	if fullKeys {
		v.full = make(map[string]uint64, capacity)
	} else {
		v.hashed = make(map[digest.Sum]uint64, capacity)
	}
	return v
}

// get looks the key up, reporting the stored mask and presence.
func (v *visitedSet) get(key []byte) (uint64, bool) {
	if v.full != nil {
		m, ok := v.full[string(key)]
		return m, ok
	}
	m, ok := v.hashed[digest.Sum128(key)]
	return m, ok
}

// put stores (or updates) the mask for the key.
func (v *visitedSet) put(key []byte, mask uint64) {
	if v.full != nil {
		v.full[string(key)] = mask
		return
	}
	v.hashed[digest.Sum128(key)] = mask
}

func (v *visitedSet) len() int {
	if v.full != nil {
		return len(v.full)
	}
	return len(v.hashed)
}

// frame is one node of the explicit DFS stack: a system state, its enabled
// steps, and the reduction bookkeeping as bitmasks over the step indices.
type frame struct {
	sys   TransitionSystem
	steps []Step
	sleep uint64 // inherited sleepers: covered by an explored sibling subtree
	todo  uint64 // steps still to expand from this visit
	done  uint64 // steps already expanded in this visit
	next  int    // scan position into steps
}

// maskAll returns a mask with the low n bits set (n <= 64).
func maskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// reducer holds the per-exploration scratch for the persistent-set closure.
type reducer struct {
	syncOrder bool
	fps       []AgentFootprints
	stepFP    []Footprint // per agent: union footprint of its enabled steps
	stepsOf   []uint64    // per agent: mask of its enabled steps
	attract   []uint64    // attract[p]: agents that must join A when p is in A
}

// persistentMask returns the mask of a smallest persistent subset of steps:
// all enabled steps of an agent set A closed under attraction. Agent q is
// attracted by p in A when q's future footprint conflicts with p's enabled
// steps (q could come to perform a step dependent on the chosen subset) or
// with p's wake footprint (q could unfreeze a disabled step of p, whose
// execution would be same-agent-dependent on p's chosen steps). Every agent
// with an enabled step is tried as the closure seed; ties keep the earliest
// seed, so the choice is deterministic. Falls back to the full mask when any
// agent is out of range or there are more than 64 agents (sound: merely
// unreduced).
func (r *reducer) persistentMask(sys TransitionSystem, steps []Step) uint64 {
	all := maskAll(len(steps))
	r.fps = sys.Footprints(r.fps[:0])
	n := len(r.fps)
	if n > 64 {
		return all
	}
	if cap(r.stepsOf) < n {
		r.stepsOf = make([]uint64, n)
		r.stepFP = make([]Footprint, n)
		r.attract = make([]uint64, n)
	}
	stepsOf := r.stepsOf[:n]
	stepFP := r.stepFP[:n]
	attract := r.attract[:n]
	for i := range stepsOf {
		stepsOf[i] = 0
		stepFP[i] = Footprint{}
	}
	var seeds uint64 // agents holding at least one enabled step
	for i, s := range steps {
		if s.Agent < 0 || s.Agent >= n {
			return all
		}
		stepsOf[s.Agent] |= uint64(1) << i
		seeds |= uint64(1) << s.Agent
		fp := s.footprint()
		sfp := &stepFP[s.Agent]
		sfp.Reads |= fp.Reads
		sfp.Writes |= fp.Writes
		sfp.Wild = sfp.Wild || fp.Wild
		sfp.Sync = sfp.Sync || fp.Sync
		sfp.Opaque = sfp.Opaque || fp.Opaque
		sfp.Fence = sfp.Fence || fp.Fence
	}
	// Attraction ranges over ALL agents, enabled or not: a currently frozen
	// agent pulled into A constrains the closure through its wake footprint
	// exactly like an enabled one (its steps must not fire behind the chosen
	// subset's back).
	for p := 0; p < n; p++ {
		var c uint64
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			if r.fps[q].Future.Conflicts(stepFP[p], r.syncOrder) || r.fps[q].Future.Conflicts(r.fps[p].Wake, r.syncOrder) {
				c |= uint64(1) << q
			}
		}
		attract[p] = c
	}
	best := all
	for s := seeds; s != 0; s &= s - 1 {
		seed := bits.TrailingZeros64(s)
		agents := uint64(1) << seed
		for {
			grown := agents
			for a := agents; a != 0; a &= a - 1 {
				grown |= attract[bits.TrailingZeros64(a)]
			}
			if grown == agents {
				break
			}
			agents = grown
		}
		var p uint64
		for a := agents; a != 0; a &= a - 1 {
			p |= stepsOf[bits.TrailingZeros64(a)]
		}
		if bits.OnesCount64(p) < bits.OnesCount64(best) {
			best = p
		}
	}
	return best
}

// Run explores the system, calling final on every distinct terminal state
// (deduplicated by canonical key). final returning false stops early. Run
// reports statistics via the returned Stats even on early stop or error.
//
// The search is an explicit-stack depth-first traversal preserving the
// pre-order of the step lists, so state spaces bounded only by MaxStates
// cannot overflow the goroutine stack. Run allocates its working state
// locally, so one Explorer may be shared by concurrent explorations.
func (x *Explorer) Run(sys TransitionSystem, final func(TransitionSystem) bool) (Stats, error) {
	if w, release := x.resolveWorkers(); w > 1 {
		st, err := x.runParallel(sys, final, w)
		release()
		return st, err
	} else {
		release()
	}
	budget := x.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	st := Stats{}
	visited := newVisitedSet(x.FullKeys, visitedCapacity(x.MaxStates))
	finals := newVisitedSet(x.FullKeys, 16)
	red := &reducer{syncOrder: x.VisibleSyncOrder}
	stop := false
	var key []byte // reused across all states of this exploration

	// enter processes one state: path bound, step computation, reduction
	// masks, dedup against the visited store, budget, terminal handling. It
	// reports descend=true when the state has steps left to expand.
	enter := func(s TransitionSystem, sleep []Step) (f frame, descend bool, err error) {
		if s.Prune() {
			st.Truncated++
			return frame{}, false, nil
		}
		// Compute steps before keying: Steps() may normalize lazy state so
		// that equivalent states reached along different paths key
		// identically.
		steps := s.Steps()
		key = s.AppendKey(key[:0])
		// skip collects the steps this visit will not expand: inherited
		// sleepers plus everything outside the persistent set. States with
		// more than 64 enabled steps fall back to full expansion — sound,
		// merely unreduced — since the masks cannot describe them.
		var sleepMask, skip uint64
		if len(steps) <= 64 && !x.FullExploration {
			for _, sl := range sleep {
				// A sleeping step is necessarily still enabled here
				// (independence preserves enabledness), so identity matching
				// against the current list loses nothing.
				for i := range steps {
					if steps[i].same(sl) {
						sleepMask |= uint64(1) << i
						break
					}
				}
			}
			skip = sleepMask
			if len(steps) > 1 {
				skip |= maskAll(len(steps)) &^ red.persistentMask(s, steps)
			}
		}
		old, seen := visited.get(key)
		if !seen {
			if visited.len() >= budget {
				return frame{}, false, &StateBudgetError{System: s.Name(), States: visited.len()}
			}
			visited.put(key, skip)
			st.States++
			if len(steps) == 0 {
				if !s.Done() {
					if x.AllowStuck {
						return frame{}, false, nil
					}
					return frame{}, false, fmt.Errorf("explore: %s deadlocked (no enabled steps, not done)", s.Name())
				}
				if _, dup := finals.get(key); !dup {
					finals.put(key, 0)
					st.Finals++
					if !final(s) {
						stop = true
					}
				}
				return frame{}, false, nil
			}
			return frame{sys: s, steps: steps, sleep: sleepMask, todo: maskAll(len(steps)) &^ skip}, true, nil
		}
		// Revisit: steps that were skipped when the state was last left but
		// are expandable now were never explored from here and are not
		// covered elsewhere — re-expand exactly those, and store the
		// intersection. (The persistent set is a deterministic function of
		// the state, so the difference can only come from a smaller sleep
		// set; Steps order is canonical, so the positional masks align.)
		todo := old &^ skip
		if todo == 0 {
			return frame{}, false, nil
		}
		visited.put(key, old&skip)
		return frame{sys: s, steps: steps, sleep: sleepMask, todo: todo}, true, nil
	}

	root, descend, err := enter(sys.Clone(), nil)
	if err != nil {
		return st, err
	}
	stack := make([]frame, 0, 64)
	if descend {
		stack = append(stack, root)
	}
	for len(stack) > 0 && !stop {
		top := &stack[len(stack)-1]
		i := top.next
		// The todo mask only describes the first 64 steps; indices past 63
		// exist only on the first visit of a >64-step state (whose mask is
		// all-ones and whose revisits carry todo == 0) and are expanded
		// unconditionally, never skipped by a zero bit of an exhausted shift.
		for i < len(top.steps) && i < 64 && top.todo&(uint64(1)<<i) == 0 {
			i++
		}
		if i >= len(top.steps) {
			stack = stack[:len(stack)-1]
			continue
		}
		top.next = i + 1
		t := top.steps[i]
		// The child's sleep set: every step already covered at this state —
		// inherited sleepers plus siblings expanded before t — that commutes
		// with t. Dependent steps wake up (their interleavings past t are
		// genuinely new); commuting ones stay asleep below t. Steps outside
		// the persistent set are NOT passed down: their coverage argument is
		// the persistence of the chosen subset, not an explored sibling
		// subtree.
		var childSleep []Step
		if !x.FullExploration {
			if m := top.sleep | top.done; m != 0 {
				for j := range top.steps {
					if m&(uint64(1)<<j) != 0 && Independent(top.steps[j], t, x.VisibleSyncOrder) {
						childSleep = append(childSleep, top.steps[j])
					}
				}
			}
		}
		top.done |= uint64(1) << i
		last := top.todo&^maskAll(i+1) == 0
		if len(top.steps) > 64 {
			last = i == len(top.steps)-1
		}
		var c TransitionSystem
		if last {
			// Last child: this frame is exhausted and will never be touched
			// again, so the child consumes the parent system in place — one
			// whole clone saved per expanded state (states with a single
			// successor, the common case on long deterministic runs, clone
			// nothing at all).
			c = top.sys
			stack = stack[:len(stack)-1]
		} else {
			c = top.sys.Clone()
		}
		if err := c.Apply(t); err != nil {
			return st, fmt.Errorf("explore: applying %s on %s: %w", t, c.Name(), err)
		}
		st.Transitions++
		child, descend, err := enter(c, childSleep)
		if err != nil {
			return st, err
		}
		if descend {
			stack = append(stack, child)
		}
	}
	return st, nil
}
