package explore_test

import (
	"flag"
	"runtime"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// exploreWorkers sets the kernel width the Benchmark/Explore* benchmarks run
// at. The default 1 is the serial kernel — the baseline BENCH_explore.json
// records — so `go test -bench BenchmarkExplore -explore-workers 8` measures
// the parallel kernel against it.
var exploreWorkers = flag.Int("explore-workers", 1, "explore kernel width for the explore benchmarks (1 = serial)")

// runSuite runs the full litmus suite — every corpus test on every machine,
// broken fixtures included — exactly the way the production runner does
// (litmus.Run: reachability query with early stop once the outcome of
// interest is observed, trace-bounded like the golden report) and returns
// the summed exploration statistics. Note that at widths above 1 the summed
// stats may vary run to run: reduced-mode state counts and early-stop points
// depend on visit order, which parallel scheduling does not fix.
func runSuite(tb testing.TB, fullExpl bool, workers int) (states, transitions int) {
	tb.Helper()
	x := &model.Explorer{MaxTraceOps: 20, FullExploration: fullExpl, Workers: workers}
	for _, lt := range litmus.Corpus() {
		for _, f := range allFactories() {
			o, err := litmus.Run(lt, f, x)
			if err != nil {
				tb.Fatalf("%s on %s: %v", lt.Name, f.Name, err)
			}
			states += o.Stats.States
			transitions += o.Stats.Transitions
		}
	}
	return states, transitions
}

// exhaustSuite is runSuite without the early stop: every reachable state of
// every (test, machine) cell, the steeper measure of the reduction.
func exhaustSuite(tb testing.TB, fullExpl bool) (states, transitions int) {
	tb.Helper()
	x := &model.Explorer{FullExploration: fullExpl}
	for _, lt := range litmus.Corpus() {
		for _, f := range allFactories() {
			st, err := x.FinalStates(f.New(lt.Prog), func(*program.FinalState) bool { return true })
			if err != nil {
				tb.Fatalf("%s on %s: %v", lt.Name, f.Name, err)
			}
			states += st.States
			transitions += st.Transitions
		}
	}
	return states, transitions
}

// TestPORStatesBudget is the states-visited regression budget CI enforces.
// Two pins, both deterministic:
//
//   - the litmus suite as production runs it (reachability queries) must
//     keep needing at most 1/1.8 the states of full exploration, and the
//     absolute POR count must not creep past its recorded ceiling. (The bar
//     was 2x before the relaxed write-buffer machines joined the corpus: RMO
//     syncs are full fences, dependent on every write commit, so the
//     reduction around them is structurally thinner.);
//   - exhaustive enumeration must keep at least its recorded reduction
//     floor (the reduction is structurally smaller there: every final state
//     must still be produced, so only interior interleavings collapse).
//
// A failure means a footprint declaration got coarser (or a machine grew a
// new dependence) and the reduction quietly degraded — or the corpus
// changed, in which case regenerate BENCH_explore.json and retune these
// numbers in the same commit.
func TestPORStatesBudget(t *testing.T) {
	por, porTrans := runSuite(t, false, 1)
	full, fullTrans := runSuite(t, true, 1)
	t.Logf("litmus suite (reachability): POR %d states / %d transitions, full %d / %d (%.2fx states, %.2fx transitions)",
		por, porTrans, full, fullTrans, float64(full)/float64(por), float64(fullTrans)/float64(porTrans))
	if por*9 > full*5 {
		t.Errorf("POR needed %d states vs %d full — reduction below the 1.8x acceptance bar", por, full)
	}
	// ~10% above the value recorded in BENCH_explore.json.
	const maxPORStates = 8800
	if por > maxPORStates {
		t.Errorf("POR needed %d states, budget is %d — update BENCH_explore.json and this budget deliberately if the corpus grew", por, maxPORStates)
	}

	exPor, exPorTrans := exhaustSuite(t, false)
	exFull, exFullTrans := exhaustSuite(t, true)
	t.Logf("litmus suite (exhaustive): POR %d states / %d transitions, full %d / %d (%.2fx states, %.2fx transitions)",
		exPor, exPorTrans, exFull, exFullTrans, float64(exFull)/float64(exPor), float64(exFullTrans)/float64(exPorTrans))
	if exPor*13 > exFull*10 {
		t.Errorf("exhaustive POR visited %d states vs %d full — below the recorded 1.3x reduction floor", exPor, exFull)
	}
	if exPorTrans*2 > exFullTrans {
		t.Errorf("exhaustive POR applied %d transitions vs %d full — below the 2x transition floor", exPorTrans, exFullTrans)
	}
}

// BenchmarkExplorePOR measures the litmus suite under the reduced
// exploration; the states metric is what BENCH_explore.json records. Runs at
// the -explore-workers width (default serial).
func BenchmarkExplorePOR(b *testing.B) {
	benchmarkSuite(b, false, *exploreWorkers)
}

// BenchmarkExploreFull is the unreduced baseline, at the -explore-workers
// width.
func BenchmarkExploreFull(b *testing.B) {
	benchmarkSuite(b, true, *exploreWorkers)
}

// parallelWidth is the width the *Parallel benchmark variants run at: the
// -explore-workers flag when raised above 1, else every core, else — on a
// single-core box, where these variants only measure coordination overhead —
// a two-worker pool.
func parallelWidth() int {
	if *exploreWorkers > 1 {
		return *exploreWorkers
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 2
}

// BenchmarkExplorePORParallel is BenchmarkExplorePOR on the parallel kernel.
func BenchmarkExplorePORParallel(b *testing.B) {
	benchmarkSuite(b, false, parallelWidth())
}

// BenchmarkExploreFullParallel is BenchmarkExploreFull on the parallel
// kernel.
func BenchmarkExploreFullParallel(b *testing.B) {
	benchmarkSuite(b, true, parallelWidth())
}

func benchmarkSuite(b *testing.B, fullExpl bool, workers int) {
	states, transitions := 0, 0
	for i := 0; i < b.N; i++ {
		states, transitions = runSuite(b, fullExpl, workers)
	}
	b.ReportMetric(float64(states), "states")
	b.ReportMetric(float64(transitions), "transitions")
}
