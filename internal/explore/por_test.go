package explore_test

// Differential tests pinning the partial-order reduction's one hard promise:
// turning it off never changes what is observable. They live in an external
// test package because the corpus and the machines sit above the kernel
// (litmus -> model -> explore); the kernel itself is exercised through the
// same adapters production uses.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/par"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// allFactories returns every machine: the standard set plus the deliberately
// broken fixtures (deduplicated). POR must be outcome-preserving on the
// broken machines too — a reduction that hid their violations would defang
// the whole fuzzing pipeline.
func allFactories() []litmus.Factory {
	fs := litmus.Factories()
	seen := make(map[string]bool, len(fs))
	for _, f := range fs {
		seen[f.Name] = true
	}
	for _, f := range litmus.BrokenFactories() {
		if !seen[f.Name] {
			seen[f.Name] = true
			fs = append(fs, f)
		}
	}
	return fs
}

// renderFinal canonically encodes a final state: per-thread registers in
// thread order, then memory sorted by address.
func renderFinal(fs *program.FinalState) string {
	var b strings.Builder
	for ti, regs := range fs.Regs {
		fmt.Fprintf(&b, "t%d:%v;", ti, regs)
	}
	addrs := make([]mem.Addr, 0, len(fs.Mem))
	for a := range fs.Mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&b, "x%d=%d;", a, fs.Mem[a])
	}
	return b.String()
}

// renderExecution canonically encodes an execution at exactly the
// granularity KeyExecution deduplicates on: each processor's program-order
// access sequence (with bound values) plus the global sync commit order. The
// raw completion interleaving of independent data accesses is deliberately
// NOT part of the encoding — key-equal executions can interleave them
// differently, and which representative survives deduplication depends on
// exploration order.
func renderExecution(e *mem.Execution) string {
	var b strings.Builder
	for p, ids := range e.ByProc() {
		for _, id := range ids {
			fmt.Fprintf(&b, "P%d:%s;", p, e.Event(id).Access)
		}
	}
	for _, id := range e.Completed {
		if ev := e.Event(id); ev.Op.IsSync() {
			fmt.Fprintf(&b, "S:P%d.%d@x%d;", ev.Proc, ev.Index, ev.Addr)
		}
	}
	return b.String()
}

// joinSorted canonicalizes a collected outcome multiset into the byte string
// two explorations must agree on.
func joinSorted(keys []string) string {
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// diffMaxStates caps each exploration in the random sweeps. The cap decides
// skipping deterministically: the FULL exploration runs first, and a program
// too big for the budget on some machine is skipped on that machine. The
// reduced run needs no such check — POR expands a subset of each state's
// steps, so it visits a subset of the states full exploration visits.
const diffMaxStates = 20_000

// finalSets explores the program on one machine at KeyState granularity both
// ways and returns the canonical final-state sets, or skipped=true when the
// full exploration exceeds the budget.
func finalSets(f litmus.Factory, p *program.Program) (por, full string, skipped bool, err error) {
	collect := func(fullExpl bool) (string, error) {
		x := &model.Explorer{MaxStates: diffMaxStates, FullExploration: fullExpl}
		var keys []string
		_, err := x.FinalStates(f.New(p), func(fs *program.FinalState) bool {
			keys = append(keys, renderFinal(fs))
			return true
		})
		return joinSorted(keys), err
	}
	full, err = collect(true)
	if errors.Is(err, model.ErrStateBudget) {
		return "", "", true, nil
	}
	if err != nil {
		return "", "", false, err
	}
	por, err = collect(false)
	return por, full, false, err
}

// resultSets is finalSets at KeyResult granularity: the paper's Result
// notion (all read values plus final memory).
func resultSets(f litmus.Factory, p *program.Program) (por, full string, skipped bool, err error) {
	collect := func(fullExpl bool) (string, model.Stats, error) {
		x := &model.Explorer{MaxStates: diffMaxStates, FullExploration: fullExpl}
		out, st, err := x.Outcomes(f.New(p))
		return strings.Join(out.Keys(), "\n"), st, err
	}
	full, st, err := collect(true)
	if errors.Is(err, model.ErrStateBudget) {
		return "", "", true, nil
	}
	if err != nil {
		return "", "", false, err
	}
	if st.Truncated != 0 {
		// The generator emits only forward branches; a truncation here would
		// silently weaken the equivalence claim.
		return "", "", false, fmt.Errorf("truncated exploration of loop-free program")
	}
	por, _, err = collect(false)
	return por, full, false, err
}

// executionSets enumerates the program's idealized executions (the fuzzer's
// path: SC machine at KeyExecution granularity, where the sync-order
// dependence refinement is live) both ways.
func executionSets(p *program.Program) (por, full string, skipped bool, err error) {
	collect := func(fullExpl bool) (string, error) {
		enum := &model.Enumerator{
			Prog:     p,
			Explorer: &model.Explorer{MaxStates: diffMaxStates, FullExploration: fullExpl},
		}
		var keys []string
		err := enum.IdealizedExecutions(func(e *mem.Execution) bool {
			keys = append(keys, renderExecution(e))
			return true
		})
		return joinSorted(keys), err
	}
	full, err = collect(true)
	if errors.Is(err, model.ErrStateBudget) {
		return "", "", true, nil
	}
	if err != nil {
		return "", "", false, err
	}
	por, err = collect(false)
	return por, full, false, err
}

// TestPOREquivalence is the determinism gate CI runs twice: on every litmus
// program and a 256-seed random corpus, across every machine (broken
// fixtures included), exploration with partial-order reduction must produce
// outcome sets byte-identical to full exploration — at final-state
// granularity for the whole corpus, and at result and execution granularity
// for the sub-corpora those modes can afford.
func TestPOREquivalence(t *testing.T) {
	factories := allFactories()
	corpus := randomCorpus(256)

	t.Run("litmus", func(t *testing.T) {
		type cell struct {
			test *litmus.Test
			f    litmus.Factory
		}
		var cells []cell
		for _, lt := range litmus.Corpus() {
			for _, f := range factories {
				cells = append(cells, cell{lt, f})
			}
		}
		_, err := par.Map(cells, 0, func(_ int, c cell) (struct{}, error) {
			por, porSt, err := litmusFinalSet(c.f.New(c.test.Prog), false)
			if err != nil {
				return struct{}{}, fmt.Errorf("%s on %s (POR): %w", c.test.Name, c.f.Name, err)
			}
			full, fullSt, err := litmusFinalSet(c.f.New(c.test.Prog), true)
			if err != nil {
				return struct{}{}, fmt.Errorf("%s on %s (full): %w", c.test.Name, c.f.Name, err)
			}
			if por != full {
				return struct{}{}, fmt.Errorf("%s on %s: POR changed the final-state set\n--- POR ---\n%s\n--- full ---\n%s",
					c.test.Name, c.f.Name, por, full)
			}
			if porSt.States > fullSt.States {
				return struct{}{}, fmt.Errorf("%s on %s: POR visited more states (%d) than full exploration (%d)",
					c.test.Name, c.f.Name, porSt.States, fullSt.States)
			}
			return struct{}{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("random-final-states", func(t *testing.T) {
		skipped := sweep(t, corpus, func(p *program.Program) (int, error) {
			n := 0
			for _, f := range factories {
				por, full, skip, err := finalSets(f, p)
				if err != nil {
					return n, fmt.Errorf("%s on %s: %w", p.Name, f.Name, err)
				}
				if skip {
					n++
					continue
				}
				if por != full {
					return n, fmt.Errorf("%s on %s: POR changed the final-state set\n--- POR ---\n%s\n--- full ---\n%s",
						p.Name, f.Name, por, full)
				}
			}
			return n, nil
		})
		// The budget skips only the state-space blowups (the non-atomic
		// machine on a handful of dense programs); the sweep must still
		// decide the overwhelming majority of its cells.
		if limit := len(corpus) * len(factories) / 10; skipped > limit {
			t.Fatalf("%d of %d cells skipped on state budget (limit %d) — corpus or budget needs retuning",
				skipped, len(corpus)*len(factories), limit)
		}
	})

	t.Run("random-results", func(t *testing.T) {
		sub := corpus[:64]
		skipped := sweep(t, sub, func(p *program.Program) (int, error) {
			n := 0
			for _, f := range factories {
				por, full, skip, err := resultSets(f, p)
				if err != nil {
					return n, fmt.Errorf("%s on %s: %w", p.Name, f.Name, err)
				}
				if skip {
					n++
					continue
				}
				if por != full {
					return n, fmt.Errorf("%s on %s: POR changed the outcome set\n--- POR ---\n%s\n--- full ---\n%s",
						p.Name, f.Name, por, full)
				}
			}
			return n, nil
		})
		if limit := len(sub) * len(factories) / 4; skipped > limit {
			t.Fatalf("%d of %d cells skipped on state budget (limit %d) — corpus or budget needs retuning",
				skipped, len(sub)*len(factories), limit)
		}
	})

	t.Run("random-executions", func(t *testing.T) {
		sub := corpus[:64]
		skipped := sweep(t, sub, func(p *program.Program) (int, error) {
			por, full, skip, err := executionSets(p)
			if err != nil {
				return 0, fmt.Errorf("%s: %w", p.Name, err)
			}
			if skip {
				return 1, nil
			}
			if por != full {
				return 0, fmt.Errorf("%s: POR changed the idealized-execution set\n--- POR ---\n%s\n--- full ---\n%s",
					p.Name, por, full)
			}
			return 0, nil
		})
		if limit := len(sub) / 4; skipped > limit {
			t.Fatalf("%d of %d programs skipped on state budget (limit %d) — corpus or budget needs retuning",
				skipped, len(sub), limit)
		}
	})
}

// litmusFinalSet explores a litmus machine exhaustively (no budget: the
// corpus is known to be small at KeyState granularity) and returns the
// canonical final-state set.
func litmusFinalSet(m model.Machine, fullExpl bool) (string, model.Stats, error) {
	x := &model.Explorer{FullExploration: fullExpl}
	var keys []string
	st, err := x.FinalStates(m, func(fs *program.FinalState) bool {
		keys = append(keys, renderFinal(fs))
		return true
	})
	return joinSorted(keys), st, err
}

// sweep fans check out over the programs through the par worker pool and
// returns the summed skip count.
func sweep(t *testing.T, progs []*program.Program, check func(*program.Program) (int, error)) int {
	t.Helper()
	counts, err := par.Map(progs, 0, func(_ int, p *program.Program) (int, error) {
		return check(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// randomCorpus generates n loop-free random programs sweeping the same shape
// variations the wofuzz campaign uses: light and dense synchronization,
// RMW-heavy mixes, guarded conditionals, and three-processor programs.
func randomCorpus(n int) []*program.Program {
	out := make([]*program.Program, n)
	for i := range out {
		var cfg workload.RandomConfig
		switch i % 6 {
		case 0:
			cfg = workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4}
		case 1:
			cfg = workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 10}
		case 2:
			cfg = workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 2, Ops: 4, SyncDensity: 60, RMWPct: 70, FetchAddPct: 40}
		case 3:
			cfg = workload.RandomConfig{Procs: 3, DataVars: 1, SyncVars: 1, Ops: 3, SyncDensity: 70}
		case 4:
			cfg = workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 3, SyncDensity: 50, CondPct: 50}
		default:
			cfg = workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 1, Ops: 4, SyncDensity: 50, SyncReadPct: 80}
		}
		out[i] = workload.Random(int64(i)+1, cfg)
	}
	return out
}
