// Parallel exploration: Explorer.Workers > 1 shards one Run across a pool of
// workers. The frontier is split over per-worker work-stealing deques (LIFO
// for the owner, FIFO for thieves, so stolen items are the shallowest — and
// therefore largest — pending subtrees), and the visited store becomes a
// striped concurrent map whose per-shard mutex linearizes all skip-mask
// transitions of any one state. Masks only ever shrink (monotonic
// intersection), and every bit removed is handed back to exactly one visit,
// which expands it — so the parallel search performs the same set of
// (state, mask) transitions as the serial kernel under an arbitrary frontier
// schedule, and reaches the same terminal-state set. Visit order, and with
// reduction enabled the Stats, are the only things scheduling can change.
// See DESIGN.md §"Parallel exploration" for the full soundness argument.
package explore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"weakorder/internal/digest"
	"weakorder/internal/par"
)

// resolveWorkers maps the Workers knob to a concrete width, plus the release
// for any slots claimed from the process-wide par budget. Explicit widths pin
// (and register) exactly what was asked; negative widths take whatever the
// budget has spare, degrading gracefully to serial under saturation.
func (x *Explorer) resolveWorkers() (int, func()) {
	switch {
	case x.Workers > 1:
		return x.Workers, par.Register(x.Workers - 1)
	case x.Workers < 0:
		extra, release := par.Acquire(par.Workers() - 1)
		return 1 + extra, release
	default:
		return 1, func() {}
	}
}

// workItem is one pending subtree root: a system state owned by whoever
// dequeues it, plus the sleep set it inherited from its expansion site.
type workItem struct {
	sys   TransitionSystem
	sleep []Step
}

// wsDeque is a mutex-based work-stealing deque. Work items are coarse (each
// is a whole subtree exploration, microseconds at minimum), so a mutex per
// operation is noise; the size field is kept atomically so thieves can scan
// past empty victims without touching their locks.
type wsDeque struct {
	mu    sync.Mutex
	head  int // index of the oldest item; items[:head] are consumed slots
	items []workItem
	size  atomic.Int64
}

func (d *wsDeque) push(it workItem) {
	d.mu.Lock()
	d.items = append(d.items, it)
	d.size.Store(int64(len(d.items) - d.head))
	d.mu.Unlock()
}

// pop takes the newest item (owner side, LIFO): depth-first order, so the
// owner's working set stays hot and bounded like the serial stack.
func (d *wsDeque) pop() (workItem, bool) {
	d.mu.Lock()
	if len(d.items) == d.head {
		d.mu.Unlock()
		return workItem{}, false
	}
	n := len(d.items) - 1
	it := d.items[n]
	d.items[n] = workItem{}
	d.items = d.items[:n]
	if len(d.items) == d.head {
		d.items, d.head = d.items[:0], 0
	}
	d.size.Store(int64(len(d.items) - d.head))
	d.mu.Unlock()
	return it, true
}

// steal takes the oldest item (thief side, FIFO): the shallowest pending
// subtree, which is statistically the largest, amortizing the steal.
func (d *wsDeque) steal() (workItem, bool) {
	d.mu.Lock()
	if len(d.items) == d.head {
		d.mu.Unlock()
		return workItem{}, false
	}
	it := d.items[d.head]
	d.items[d.head] = workItem{}
	d.head++
	if d.head >= 32 && d.head*2 >= len(d.items) {
		d.items = append(d.items[:0], d.items[d.head:]...)
		d.head = 0
	}
	d.size.Store(int64(len(d.items) - d.head))
	d.mu.Unlock()
	return it, true
}

// visitedShards is the stripe count of the concurrent visited store. 64
// shards keep contention negligible at any realistic worker count while the
// per-shard maps stay dense enough to be cache-friendly.
const visitedShards = 64

type visitedShard struct {
	mu     sync.Mutex
	hashed map[digest.Sum]uint64
	full   map[string]uint64
}

// stripedVisited is the concurrent visited store: states are assigned to
// shards by the low bits of their digest — in FullKeys mode too, where the
// digest routes but the full key bytes deduplicate — so a state's shard, and
// hence the mutex serializing its mask transitions, is a stable function of
// the state alone.
type stripedVisited struct {
	budget int64
	count  atomic.Int64 // distinct states committed (reservation-counted)
	shards [visitedShards]visitedShard
}

func newStripedVisited(fullKeys bool, capacity, budget int) *stripedVisited {
	v := &stripedVisited{budget: int64(budget)}
	per := capacity/visitedShards + 1
	for i := range v.shards {
		if fullKeys {
			v.shards[i].full = make(map[string]uint64, per)
		} else {
			v.shards[i].hashed = make(map[digest.Sum]uint64, per)
		}
	}
	return v
}

// visit performs one atomic visited-store transition for the state with the
// given key: a first visit reserves a budget slot, stores skip, and returns
// todo = all&^skip with isNew set; a revisit returns the steps stored as
// skipped before but expandable now (old&^skip) and stores the intersection
// old&skip. The shard mutex makes the read-modify-write atomic, so when two
// workers race to a state one of them observes the other's store: masks
// shrink monotonically, and every bit ever cleared from a stored mask is
// returned in exactly one visit's todo — a lost race re-expands at most the
// mask difference, never loses a step.
func (v *stripedVisited) visit(key []byte, all, skip uint64) (todo uint64, isNew, overBudget bool) {
	sum := digest.Sum128(key)
	sh := &v.shards[sum[0]&(visitedShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.full != nil {
		old, seen := sh.full[string(key)]
		if !seen {
			if v.count.Add(1) > v.budget {
				v.count.Add(-1)
				return 0, false, true
			}
			sh.full[string(key)] = skip
			return all &^ skip, true, false
		}
		if todo = old &^ skip; todo != 0 {
			sh.full[string(key)] = old & skip
		}
		return todo, false, false
	}
	old, seen := sh.hashed[sum]
	if !seen {
		if v.count.Add(1) > v.budget {
			v.count.Add(-1)
			return 0, false, true
		}
		sh.hashed[sum] = skip
		return all &^ skip, true, false
	}
	if todo = old &^ skip; todo != 0 {
		sh.hashed[sum] = old & skip
	}
	return todo, false, false
}

// prun is the shared state of one parallel Run.
type prun struct {
	x       *Explorer
	visited *stripedVisited
	deques  []*wsDeque
	pending atomic.Int64 // items published but not yet fully processed
	stop    atomic.Bool

	finalMu sync.Mutex // serializes the caller's final callback
	final   func(TransitionSystem) bool

	errMu sync.Mutex
	err   error

	idleMu sync.Mutex
	idle   *sync.Cond
	idlers atomic.Int32
}

// workerState is the per-worker scratch: reducer arrays, the reused key
// buffer, and the stats buffer merged after the pool drains.
type workerState struct {
	id    int
	red   *reducer
	key   []byte
	stats Stats
}

// pframe mirrors the serial frame for one expansion. wide marks the first
// visit of a state with more than 64 enabled steps, whose indices past 63 the
// masks cannot describe: they are expanded unconditionally, and revisits of
// such states carry todo == 0 (nothing was ever skipped).
type pframe struct {
	sys   TransitionSystem
	steps []Step
	sleep uint64
	todo  uint64
	wide  bool
}

// runParallel is Run at width > 1.
func (x *Explorer) runParallel(sys TransitionSystem, final func(TransitionSystem) bool, width int) (Stats, error) {
	budget := x.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	p := &prun{
		x:       x,
		visited: newStripedVisited(x.FullKeys, visitedCapacity(x.MaxStates), budget),
		deques:  make([]*wsDeque, width),
		final:   final,
	}
	p.idle = sync.NewCond(&p.idleMu)
	for i := range p.deques {
		p.deques[i] = &wsDeque{}
	}
	p.pending.Store(1)
	p.deques[0].push(workItem{sys: sys.Clone()})
	stats := make([]Stats, width)
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func(id int) {
			defer wg.Done()
			ws := &workerState{id: id, red: &reducer{syncOrder: x.VisibleSyncOrder}}
			p.worker(ws)
			stats[id] = ws.stats
		}(w)
	}
	wg.Wait()
	var st Stats
	for _, s := range stats {
		st.States += s.States
		st.Transitions += s.Transitions
		st.Finals += s.Finals
		st.Truncated += s.Truncated
	}
	p.errMu.Lock()
	err := p.err
	p.errMu.Unlock()
	return st, err
}

func (p *prun) worker(ws *workerState) {
	for {
		it, ok := p.take(ws.id)
		if !ok {
			return
		}
		if err := p.process(ws, it); err != nil {
			p.fail(err)
		}
		if p.pending.Add(-1) == 0 {
			p.wakeAll()
		}
	}
}

// take returns the next work item for worker id: local pop first, then a
// steal sweep over the other deques, then — if work may still appear — park
// on the idle cond. The idler count is published under idleMu before the
// rechecks, and publishers push before reading it, so a publish racing a
// failed scan is always caught by the recheck and never sleeps through.
func (p *prun) take(id int) (workItem, bool) {
	for {
		if p.stop.Load() {
			return workItem{}, false
		}
		if it, ok := p.deques[id].pop(); ok {
			return it, true
		}
		for off := 1; off < len(p.deques); off++ {
			d := p.deques[(id+off)%len(p.deques)]
			if d.size.Load() == 0 {
				continue
			}
			if it, ok := d.steal(); ok {
				return it, true
			}
		}
		if p.pending.Load() == 0 {
			return workItem{}, false
		}
		p.idleMu.Lock()
		p.idlers.Add(1)
		if p.anyWork() || p.pending.Load() == 0 || p.stop.Load() {
			p.idlers.Add(-1)
			p.idleMu.Unlock()
			continue
		}
		p.idle.Wait()
		p.idlers.Add(-1)
		p.idleMu.Unlock()
	}
}

func (p *prun) anyWork() bool {
	for _, d := range p.deques {
		if d.size.Load() != 0 {
			return true
		}
	}
	return false
}

// publish hands a work item to worker id's own deque (keeping publication
// local: a busy worker's surplus is what thieves target) and wakes one parked
// worker if any.
func (p *prun) publish(id int, it workItem) {
	p.pending.Add(1)
	p.deques[id].push(it)
	if p.idlers.Load() > 0 {
		p.idleMu.Lock()
		p.idle.Signal()
		p.idleMu.Unlock()
	}
}

func (p *prun) wakeAll() {
	p.idleMu.Lock()
	p.idle.Broadcast()
	p.idleMu.Unlock()
}

// halt initiates wind-down: early stop or error.
func (p *prun) halt() {
	p.stop.Store(true)
	p.wakeAll()
}

// fail records the first error and winds the pool down. "First" is first to
// acquire the mutex — under parallel scheduling there is no canonical first
// failure, only whether the run failed.
func (p *prun) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
	p.halt()
}

// process explores the subtree rooted at it, descending inline into the
// first pending child of every state (preserving the serial kernel's
// depth-first memory behavior) and publishing the remaining siblings as work
// items, newest pushed last so a lone worker pops them — and hence visits
// states — in exactly the serial pre-order.
func (p *prun) process(ws *workerState, it workItem) error {
	s, sleep := it.sys, it.sleep
	for {
		if p.stop.Load() {
			return nil
		}
		f, descend, err := p.enter(ws, s, sleep)
		if err != nil || !descend {
			return err
		}
		// Expand the frame in one pass: the first pending step becomes the
		// inline continuation; every later sibling is cloned from the parent
		// (the inline child consumes the parent afterwards — k-1 clones for k
		// children, the serial elision), applied, and queued for publication.
		// Sibling i carries the earlier-expanded siblings that commute with
		// it in its sleep set, exactly as if they had been expanded first —
		// coverage is a property of the explored set at fixpoint, not of the
		// order the subtrees run in.
		var (
			inline      Step
			inlineSleep []Step
			haveInline  bool
			pubs        []workItem
			done        uint64
		)
		n := len(f.steps)
		for i := 0; i < n; i++ {
			if i < 64 {
				if f.todo&(uint64(1)<<i) == 0 {
					continue
				}
			} else if !f.wide {
				break
			}
			t := f.steps[i]
			var childSleep []Step
			if !p.x.FullExploration {
				if m := f.sleep | done; m != 0 {
					for j := 0; j < n && j < 64; j++ {
						if m&(uint64(1)<<j) != 0 && Independent(f.steps[j], t, p.x.VisibleSyncOrder) {
							childSleep = append(childSleep, f.steps[j])
						}
					}
				}
			}
			if i < 64 {
				done |= uint64(1) << i
			}
			if !haveInline {
				inline, inlineSleep, haveInline = t, childSleep, true
				continue
			}
			c := f.sys.Clone()
			if err := c.Apply(t); err != nil {
				return fmt.Errorf("explore: applying %s on %s: %w", t, c.Name(), err)
			}
			ws.stats.Transitions++
			pubs = append(pubs, workItem{sys: c, sleep: childSleep})
		}
		for i := len(pubs) - 1; i >= 0; i-- {
			p.publish(ws.id, pubs[i])
		}
		if !haveInline {
			// Defensive: enter never descends with an empty todo set, so an
			// expansion always has an inline continuation.
			return nil
		}
		if err := f.sys.Apply(inline); err != nil {
			return fmt.Errorf("explore: applying %s on %s: %w", inline, f.sys.Name(), err)
		}
		ws.stats.Transitions++
		s, sleep = f.sys, inlineSleep
	}
}

// enter mirrors the serial kernel's per-state processing against the striped
// store: path bound, step computation, reduction masks, atomic visited
// transition, budget, terminal handling.
func (p *prun) enter(ws *workerState, s TransitionSystem, sleep []Step) (pframe, bool, error) {
	x := p.x
	if s.Prune() {
		ws.stats.Truncated++
		return pframe{}, false, nil
	}
	steps := s.Steps()
	ws.key = s.AppendKey(ws.key[:0])
	var sleepMask, skip uint64
	if len(steps) <= 64 && !x.FullExploration {
		for _, sl := range sleep {
			for i := range steps {
				if steps[i].same(sl) {
					sleepMask |= uint64(1) << i
					break
				}
			}
		}
		skip = sleepMask
		if len(steps) > 1 {
			skip |= maskAll(len(steps)) &^ ws.red.persistentMask(s, steps)
		}
	}
	todo, isNew, over := p.visited.visit(ws.key, maskAll(len(steps)), skip)
	if over {
		// The reservation count makes "budget exhausted" mean exactly what
		// it says at any width: precisely budget distinct states committed.
		return pframe{}, false, &StateBudgetError{System: s.Name(), States: int(p.visited.budget)}
	}
	if !isNew {
		if todo == 0 {
			return pframe{}, false, nil
		}
		return pframe{sys: s, steps: steps, sleep: sleepMask, todo: todo}, true, nil
	}
	ws.stats.States++
	if len(steps) == 0 {
		if !s.Done() {
			if x.AllowStuck {
				return pframe{}, false, nil
			}
			return pframe{}, false, fmt.Errorf("explore: %s deadlocked (no enabled steps, not done)", s.Name())
		}
		// First visit of a terminal state: the visited reservation above is
		// the dedup, so this is the one delivery. The callback is serialized
		// — callers' closures are not required to be thread-safe — and
		// suppressed after stop, so an early stop is prompt at any width.
		stopped := false
		p.finalMu.Lock()
		if !p.stop.Load() {
			ws.stats.Finals++
			if !p.final(s) {
				stopped = true
			}
		}
		p.finalMu.Unlock()
		if stopped {
			p.halt()
		}
		return pframe{}, false, nil
	}
	if todo == 0 && len(steps) <= 64 {
		// Every enabled step is asleep or outside the persistent set: a
		// legitimate leaf of the reduced search (the serial kernel pushes
		// and immediately pops such frames).
		return pframe{}, false, nil
	}
	return pframe{sys: s, steps: steps, sleep: sleepMask, todo: todo, wide: len(steps) > 64}, true, nil
}
