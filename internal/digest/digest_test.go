package digest

import (
	"encoding/hex"
	"testing"
)

// TestVectors pins the function to the published MurmurHash3 x64 128 results
// (seed 0), so the digest stays stable across refactors and platforms.
func TestVectors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "00000000000000000000000000000000"},
		{"hello", "cbd8a7b341bd9b025b1e906a48ae1d19"},
		{"hello, world", "342fac623a5ebc8e4cdcbc079642414d"},
		{"The quick brown fox jumps over the lazy dog", "e34bbc7bbc071b6c7a433ca9c49a9347"},
	}
	for _, c := range cases {
		got := Sum128([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum128(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

// TestAllLengths exercises every tail length through both the block loop and
// the switch, checking each is distinct and deterministic.
func TestAllLengths(t *testing.T) {
	seen := make(map[Sum]int)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i * 37)
	}
	for n := 0; n <= len(buf); n++ {
		s := Sum128(buf[:n])
		if prev, dup := seen[s]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[s] = n
		if s != Sum128(buf[:n]) {
			t.Fatalf("length %d not deterministic", n)
		}
	}
}

// TestSmallPerturbations checks that single-byte and single-bit changes over
// structured (state-key-like) inputs never collide.
func TestSmallPerturbations(t *testing.T) {
	base := make([]byte, 48)
	seen := make(map[Sum]string)
	record := func(b []byte, label string) {
		s := Sum128(b)
		if prev, dup := seen[s]; dup && prev != label {
			t.Fatalf("collision between %s and %s", prev, label)
		}
		seen[s] = label
	}
	record(base, "base")
	for i := range base {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), base...)
			mut[i] ^= 1 << bit
			record(mut, "")
		}
	}
	if len(seen) != 1+len(base)*8 {
		t.Fatalf("expected %d distinct digests, got %d", 1+len(base)*8, len(seen))
	}
}
