// Package digest provides a fixed-seed 128-bit non-cryptographic hash for
// deduplicating explored states. Exhaustive exploration memoizes on the hash
// of a state's canonical binary encoding instead of the encoding itself,
// shrinking visited sets from arbitrary-length strings to 16-byte values and
// eliminating the per-state key allocation. At 128 bits the birthday-bound
// collision probability across even 10^8 distinct states is below 10^-22, far
// beneath the simulator's other error sources; explorations that must be
// collision-free by construction can fall back to full keys (see
// model.Explorer.FullKeys).
//
// The function is MurmurHash3's x64 128-bit variant with a fixed zero seed,
// so digests are reproducible across runs and platforms.
package digest

import "encoding/binary"

// Size is the digest length in bytes.
const Size = 16

// Sum is a 128-bit digest, usable directly as a map key.
type Sum [Size]byte

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 returns the fixed-seed 128-bit digest of b.
func Sum128(b []byte) Sum {
	var h1, h2 uint64
	n := len(b)

	for len(b) >= 16 {
		k1 := binary.LittleEndian.Uint64(b)
		k2 := binary.LittleEndian.Uint64(b[8:])
		b = b[16:]

		k1 *= c1
		k1 = k1<<31 | k1>>33
		k1 *= c2
		h1 ^= k1
		h1 = h1<<27 | h1>>37
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = k2<<33 | k2>>31
		k2 *= c1
		h2 ^= k2
		h2 = h2<<31 | h2>>33
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(b) {
	case 15:
		k2 ^= uint64(b[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(b[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(b[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(b[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(b[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(b[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(b[8])
		k2 *= c2
		k2 = k2<<33 | k2>>31
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(b[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(b[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(b[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(b[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(b[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(b[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(b[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(b[0])
		k1 *= c1
		k1 = k1<<31 | k1>>33
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1

	var s Sum
	binary.BigEndian.PutUint64(s[:8], h1)
	binary.BigEndian.PutUint64(s[8:], h2)
	return s
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
