// Benchmarks regenerating each experiment (one per figure/table of the
// reproduction; see DESIGN.md §3 and EXPERIMENTS.md) plus micro-benchmarks of
// the core machinery. Run with:
//
//	go test -bench=. -benchmem
package weakorder_test

import (
	"testing"

	"weakorder"
	"weakorder/internal/core"
	"weakorder/internal/digest"
	"weakorder/internal/experiments"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/proc"
	"weakorder/internal/race"
	"weakorder/internal/workload"
)

// BenchmarkFigure1 regenerates E1: the store-buffering violation across the
// four relaxed hardware configurations and SC.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if !s.SCForbids || s.Mismatches != 0 {
			b.Fatal("figure 1 regression")
		}
	}
}

// BenchmarkFigure2 regenerates E2: the DRF0 example and counterexample.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if !s.AObeys || s.BObeys {
			b.Fatal("figure 2 regression")
		}
	}
}

// BenchmarkFigure3 regenerates E3: the Definition-1 vs Definition-2 producer
// stall sweep on the timed machine.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if !s.Def1P0AlwaysSlower {
			b.Fatal("figure 3 regression")
		}
	}
}

// BenchmarkQuantitative regenerates E4: cycles/stalls/messages across
// workloads and policies.
func BenchmarkQuantitative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Quant()
		if err != nil {
			b.Fatal(err)
		}
		if !s.WeakNeverSlower {
			b.Fatal("quantitative regression")
		}
	}
}

// BenchmarkSpinRefinement regenerates E5: the Section-6 read-only-sync
// serialization comparison.
func BenchmarkSpinRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Spin()
		if err != nil {
			b.Fatal(err)
		}
		if !s.GetXReduced {
			b.Fatal("spin regression")
		}
	}
}

// BenchmarkContract regenerates E6 (reduced sweep size per iteration: the
// full 40-program sweep is the -run contract CLI's job).
func BenchmarkContract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Contract(8, 7)
		if err != nil {
			b.Fatal(err)
		}
		if s.Programs != 8 {
			b.Fatal("contract regression")
		}
	}
}

// BenchmarkFence regenerates E7: RP3 fence vs Definition 1 outcome equality.
func BenchmarkFence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fence()
		if err != nil {
			b.Fatal(err)
		}
		if !s.Equal {
			b.Fatal("fence regression")
		}
	}
}

// BenchmarkDelaySet regenerates E8: Shasha-Snir delay-set computation and
// enforcement on random branch-free programs.
func BenchmarkDelaySet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.DelaySet(10, 3)
		if err != nil {
			b.Fatal(err)
		}
		if s.Violations != 0 {
			b.Fatal("delay-set regression")
		}
	}
}

// BenchmarkConditions regenerates E9: Section-5.1 condition checking against
// timed-machine logs, including the ablation hunt.
func BenchmarkConditions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Conditions()
		if err != nil {
			b.Fatal(err)
		}
		if s.CleanViolations != 0 || !s.AblationCaught {
			b.Fatal("conditions regression")
		}
	}
}

// BenchmarkSweep regenerates E10: latency/fabric sensitivity of the
// Definition-1 vs Definition-2 comparison.
func BenchmarkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Sweep()
		if err != nil {
			b.Fatal(err)
		}
		if !s.GapGrowsWithLatency {
			b.Fatal("sweep regression")
		}
	}
}

// BenchmarkProtocol regenerates E11: write-invalidate vs write-update on the
// data path.
func BenchmarkProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Protocol()
		if err != nil {
			b.Fatal(err)
		}
		if !s.UpdateWinsProdCons || !s.InvalidateWinsStreaming {
			b.Fatal("protocol regression")
		}
	}
}

// --- Micro-benchmarks of the underlying machinery ---

// BenchmarkExploreSC measures exhaustive exploration of the idealized machine
// on the 4-thread IRIW litmus test.
func BenchmarkExploreSC(b *testing.B) {
	t, _ := litmus.ByName("iriw-data")
	x := &model.Explorer{}
	for i := 0; i < b.N; i++ {
		if _, err := x.Visit(model.NewSC(t.Prog), func(model.Machine) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreWODef2 measures exploration of the Section-5 machine on the
// TAS mutex test (spin loops, reservations).
func BenchmarkExploreWODef2(b *testing.B) {
	t, _ := litmus.ByName("tas-mutex")
	x := &model.Explorer{}
	for i := 0; i < b.N; i++ {
		if _, err := x.Visit(model.NewWODef2(t.Prog), func(model.Machine) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplorerKey measures the binary state-key encoding that memoizes
// exploration: one AppendKey into a reused buffer plus the 128-bit digest, the
// per-state cost on the Explorer hot path. The target is zero allocations per
// state once the buffer has grown to steady state.
func BenchmarkExplorerKey(b *testing.B) {
	t, _ := litmus.ByName("iriw-data")
	m := model.NewWODef2(t.Prog)
	// Walk a few transitions so the key covers non-initial machine state.
	for i := 0; i < 4; i++ {
		ts := m.Transitions()
		if len(ts) == 0 {
			break
		}
		if err := m.Apply(ts[0]); err != nil {
			b.Fatal(err)
		}
	}
	var key []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = m.AppendKey(model.KeyState, key[:0])
		digest.Sum128(key)
	}
}

// BenchmarkHappensBefore measures po/so/hb construction on a synthetic
// 512-event execution.
func BenchmarkHappensBefore(b *testing.B) {
	e := mem.NewExecution(8)
	for i := 0; i < 512; i++ {
		p := mem.ProcID(i % 8)
		if i%16 == 0 {
			e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: 1000, Value: mem.Value(i), WValue: mem.Value(i + 1)})
		} else {
			e.Append(mem.Access{Proc: p, Op: mem.OpWrite, Addr: mem.Addr(i % 32), Value: mem.Value(i)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildOrders(e, core.DRF0{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRaceDetector measures the vector-clock detector on the same
// synthetic execution.
func BenchmarkRaceDetector(b *testing.B) {
	e := mem.NewExecution(8)
	for i := 0; i < 512; i++ {
		p := mem.ProcID(i % 8)
		if i%16 == 0 {
			e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: 1000, Value: mem.Value(i), WValue: mem.Value(i + 1)})
		} else {
			e.Append(mem.Access{Proc: p, Op: mem.OpRead, Addr: mem.Addr(i % 4), Value: 0})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := race.CheckExecution(e, core.DRF0{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCCheck measures the VSC replay search on a producer/consumer
// trace from the timed machine.
func BenchmarkSCCheck(b *testing.B) {
	p := workload.ProducerConsumer(6, 2)
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	init := make(map[mem.Addr]mem.Value)
	for a, v := range p.Init {
		init[a] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := core.SCCheck(res.Trace, init)
		if err != nil || !w.SC {
			b.Fatal("SCCheck regression")
		}
	}
}

// BenchmarkTimedLock measures the timed simulator on a contended lock.
func BenchmarkTimedLock(b *testing.B) {
	p := workload.Lock(4, 8, 10, 10, workload.SpinSync)
	for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2, proc.PolicyWODef2DRF1} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := machine.Run(p, machine.NewConfig(pol)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimedBarrier measures the timed simulator on the spinning barrier.
func BenchmarkTimedBarrier(b *testing.B) {
	p := workload.Barrier(4, 6, 20, workload.SpinSync)
	for _, pol := range []proc.Policy{proc.PolicyWODef2, proc.PolicyWODef2DRF1} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := machine.Run(p, machine.NewConfig(pol)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckDRF0 measures whole-program Definition-3 checking through the
// public facade.
func BenchmarkCheckDRF0(b *testing.B) {
	p := weakorder.MustParseProgram(`
name: mp
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
`).Program
	for i := 0; i < b.N; i++ {
		rep, err := weakorder.CheckDRF0(p)
		if err != nil || !rep.Obeys() {
			b.Fatal("CheckDRF0 regression")
		}
	}
}
